//! Ranked communicators over crossbeam channels.
//!
//! A *world* of `size` ranks is spawned with [`spawn_world`]; each rank's
//! closure receives a [`Communicator`] supporting tagged point-to-point
//! messages and the standard collectives. Payloads are `Vec<f64>` — the
//! only message type the numerical kernels exchange.

use std::collections::{HashMap, VecDeque};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Communication failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's channel is closed (its rank panicked or exited early).
    PeerGone { rank: usize },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerGone { rank } => write!(f, "rank {rank} is gone"),
        }
    }
}

impl std::error::Error for CommError {}

/// A tagged message envelope.
struct Envelope {
    src: usize,
    tag: u64,
    payload: Vec<f64>,
}

/// One rank's endpoint in a world.
pub struct Communicator {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` call.
    pending: HashMap<(usize, u64), VecDeque<Vec<f64>>>,
}

impl Communicator {
    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `payload` to `dst` with `tag`.
    ///
    /// # Errors
    /// [`CommError::PeerGone`] when the destination has hung up.
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<f64>) -> Result<(), CommError> {
        assert!(dst < self.size, "destination rank out of range");
        self.senders[dst]
            .send(Envelope { src: self.rank, tag, payload })
            .map_err(|_| CommError::PeerGone { rank: dst })
    }

    /// Blocking receive of a message from `src` with `tag`; out-of-order
    /// arrivals are buffered.
    ///
    /// # Errors
    /// [`CommError::PeerGone`] when the world has collapsed before a
    /// matching message arrived.
    pub fn recv(&mut self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let key = (src, tag);
        if let Some(queue) = self.pending.get_mut(&key) {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
        }
        loop {
            let env = self.inbox.recv().map_err(|_| CommError::PeerGone { rank: src })?;
            if env.src == src && env.tag == tag {
                return Ok(env.payload);
            }
            self.pending.entry((env.src, env.tag)).or_default().push_back(env.payload);
        }
    }

    /// Broadcast from `root`: the root's `data` reaches every rank.
    pub fn bcast(&mut self, root: usize, data: &mut Vec<f64>) -> Result<(), CommError> {
        const TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            for dst in 0..self.size {
                if dst != root {
                    self.send(dst, TAG, data.clone())?;
                }
            }
        } else {
            *data = self.recv(root, TAG)?;
        }
        Ok(())
    }

    /// Gather to `root`: returns `Some(chunks)` (indexed by rank) at the
    /// root, `None` elsewhere.
    pub fn gather(
        &mut self,
        root: usize,
        data: Vec<f64>,
    ) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        const TAG: u64 = u64::MAX - 2;
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size];
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv(src, TAG)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, TAG, data)?;
            Ok(None)
        }
    }

    /// Allgather: every rank receives every rank's chunk, concatenated in
    /// rank order.
    pub fn allgather(&mut self, data: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let gathered = self.gather(0, data)?;
        let mut flat = match gathered {
            Some(chunks) => chunks.concat(),
            None => Vec::new(),
        };
        self.bcast(0, &mut flat)?;
        Ok(flat)
    }

    /// Elementwise sum-allreduce.
    pub fn allreduce_sum(&mut self, data: Vec<f64>) -> Result<Vec<f64>, CommError> {
        let len = data.len();
        let gathered = self.gather(0, data)?;
        let mut acc = match gathered {
            Some(chunks) => {
                let mut acc = vec![0.0; len];
                for chunk in chunks {
                    for (a, v) in acc.iter_mut().zip(chunk) {
                        *a += v;
                    }
                }
                acc
            }
            None => Vec::new(),
        };
        self.bcast(0, &mut acc)?;
        Ok(acc)
    }

    /// Scalar sum-allreduce.
    pub fn allreduce_scalar(&mut self, v: f64) -> Result<f64, CommError> {
        Ok(self.allreduce_sum(vec![v])?[0])
    }

    /// Barrier: all ranks wait until every rank arrives.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let _ = self.allreduce_scalar(0.0)?;
        Ok(())
    }

    /// Scatter from `root`: rank `r` receives `chunks[r]`. Pass `None` on
    /// non-root ranks.
    pub fn scatter(
        &mut self,
        root: usize,
        chunks: Option<Vec<Vec<f64>>>,
    ) -> Result<Vec<f64>, CommError> {
        const TAG: u64 = u64::MAX - 3;
        if self.rank == root {
            let chunks = chunks.expect("root must supply chunks");
            assert_eq!(chunks.len(), self.size, "scatter needs one chunk per rank");
            let mut mine = Vec::new();
            for (dst, chunk) in chunks.into_iter().enumerate() {
                if dst == root {
                    mine = chunk;
                } else {
                    self.send(dst, TAG, chunk)?;
                }
            }
            Ok(mine)
        } else {
            self.recv(root, TAG)
        }
    }
}

/// Spawns a world of `size` ranks, runs `f` on each with its communicator,
/// and returns the per-rank results in rank order.
///
/// # Panics
/// Propagates a panic of any rank.
pub fn spawn_world<T, F>(size: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Communicator) -> T + Sync,
{
    assert!(size > 0, "world size must be positive");
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let comms: Vec<Communicator> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Communicator {
            rank,
            size,
            senders: senders.clone(),
            inbox,
            pending: HashMap::new(),
        })
        .collect();
    drop(senders);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(move || f(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let results = spawn_world(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![1.0, 2.0]).unwrap();
                comm.recv(1, 8).unwrap()
            } else {
                let got = comm.recv(0, 7).unwrap();
                comm.send(0, 8, vec![got[0] + got[1]]).unwrap();
                got
            }
        });
        assert_eq!(results[0], vec![3.0]);
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let results = spawn_world(2, |mut comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1.
                comm.send(1, 2, vec![2.0]).unwrap();
                comm.send(1, 1, vec![1.0]).unwrap();
                vec![]
            } else {
                // Receive in the opposite order.
                let a = comm.recv(0, 1).unwrap();
                let b = comm.recv(0, 2).unwrap();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn bcast_reaches_all_ranks() {
        let results = spawn_world(4, |mut comm| {
            let mut data = if comm.rank() == 2 { vec![9.0, 8.0] } else { vec![] };
            comm.bcast(2, &mut data).unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = spawn_world(3, |mut comm| {
            comm.gather(0, vec![comm.rank() as f64]).unwrap()
        });
        let chunks = results[0].as_ref().unwrap();
        assert_eq!(chunks, &vec![vec![0.0], vec![1.0], vec![2.0]]);
        assert!(results[1].is_none());
    }

    #[test]
    fn allgather_concatenates() {
        let results = spawn_world(3, |mut comm| {
            comm.allgather(vec![comm.rank() as f64; 2]).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let results = spawn_world(4, |mut comm| {
            comm.allreduce_sum(vec![comm.rank() as f64, 1.0]).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let results = spawn_world(3, |mut comm| {
            let chunks = (comm.rank() == 1)
                .then(|| vec![vec![0.0], vec![10.0], vec![20.0]]);
            comm.scatter(1, chunks).unwrap()
        });
        assert_eq!(results[0], vec![0.0]);
        assert_eq!(results[1], vec![10.0]);
        assert_eq!(results[2], vec![20.0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        spawn_world(4, |mut comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must have incremented.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn single_rank_world_works() {
        let results = spawn_world(1, |mut comm| {
            assert_eq!(comm.size(), 1);
            comm.allreduce_scalar(5.0).unwrap()
        });
        assert_eq!(results, vec![5.0]);
    }
}

//! Row-distributed preconditioned conjugate gradient.
//!
//! This is the structure of the paper's HPC state-estimation kernel
//! (Chen et al. \[2\]): the SPD gain matrix is block-partitioned by rows
//! across the ranks of one cluster; every iteration performs
//!
//! 1. an **allgather** of the shared direction vector,
//! 2. a **local SpMV** over the rank's row block,
//! 3. **allreduced** dot products for the step sizes.
//!
//! The Jacobi preconditioner is applied entirely locally (each rank owns
//! its diagonal block entries) — the reason it is the preconditioner of
//! choice for the distributed solver.

use pgse_sparsela::Csr;

use crate::comm::{CommError, Communicator};

/// Result of a distributed PCG solve (identical on every rank).
#[derive(Debug, Clone)]
pub struct DpcgOutcome {
    /// The full solution vector.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub rel_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Contiguous row range owned by `rank` when `n` rows are split over
/// `size` ranks (remainder spread over the first ranks).
pub fn row_range(n: usize, size: usize, rank: usize) -> std::ops::Range<usize> {
    let base = n / size;
    let extra = n % size;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..start + len
}

/// Solves `A x = b` with Jacobi-preconditioned CG across the communicator.
///
/// Every rank passes its *local row block* `a_local` (with full-width
/// columns, rows `row_range(n, size, rank)`) and the matching slice of the
/// right-hand side. All ranks receive the same [`DpcgOutcome`].
///
/// # Errors
/// [`CommError`] when a peer disappears mid-solve.
///
/// # Panics
/// Panics when the local block shape disagrees with `row_range`.
pub fn dpcg_solve(
    comm: &mut Communicator,
    a_local: &Csr,
    b_local: &[f64],
    rel_tol: f64,
    max_iter: usize,
) -> Result<DpcgOutcome, CommError> {
    let n = a_local.ncols();
    let my = row_range(n, comm.size(), comm.rank());
    assert_eq!(a_local.nrows(), my.len(), "local block has wrong row count");
    assert_eq!(b_local.len(), my.len(), "local rhs has wrong length");

    // Jacobi preconditioner: the local diagonal entries.
    let minv: Vec<f64> = my
        .clone()
        .enumerate()
        .map(|(li, gi)| {
            let d = a_local.get(li, gi);
            if d > 0.0 {
                1.0 / d
            } else {
                1.0
            }
        })
        .collect();

    let bnorm2 = comm.allreduce_scalar(b_local.iter().map(|v| v * v).sum())?;
    let bnorm = bnorm2.sqrt();
    if bnorm == 0.0 {
        return Ok(DpcgOutcome { x: vec![0.0; n], iterations: 0, rel_residual: 0.0, converged: true });
    }

    let m_local = my.len();
    let mut x_local = vec![0.0f64; m_local];
    let mut r_local = b_local.to_vec();
    let mut z_local: Vec<f64> = r_local.iter().zip(&minv).map(|(r, m)| r * m).collect();
    let mut p_local = z_local.clone();
    let mut rz = comm.allreduce_scalar(r_local.iter().zip(&z_local).map(|(a, b)| a * b).sum())?;

    let mut iterations = 0usize;
    let mut rel = 1.0f64;
    let mut converged = false;
    let mut ap_local = vec![0.0f64; m_local];
    while iterations < max_iter {
        iterations += 1;
        // Distributed SpMV: gather the full direction vector, multiply the
        // local row block.
        let p_full = comm.allgather(p_local.clone())?;
        a_local.spmv(&p_full, &mut ap_local);
        let pap =
            comm.allreduce_scalar(p_local.iter().zip(&ap_local).map(|(a, b)| a * b).sum())?;
        if pap <= 0.0 {
            break;
        }
        let alpha = rz / pap;
        for i in 0..m_local {
            x_local[i] += alpha * p_local[i];
            r_local[i] -= alpha * ap_local[i];
        }
        let rnorm2 = comm.allreduce_scalar(r_local.iter().map(|v| v * v).sum())?;
        rel = rnorm2.sqrt() / bnorm;
        if rel <= rel_tol {
            converged = true;
            break;
        }
        for i in 0..m_local {
            z_local[i] = r_local[i] * minv[i];
        }
        let rz_new =
            comm.allreduce_scalar(r_local.iter().zip(&z_local).map(|(a, b)| a * b).sum())?;
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..m_local {
            p_local[i] = z_local[i] + beta * p_local[i];
        }
    }
    let x = comm.allgather(x_local)?;
    Ok(DpcgOutcome { x, iterations, rel_residual: rel, converged })
}

/// Splits a full matrix into the row block owned by `rank` (helper for
/// tests and the cluster runtime, which holds the assembled gain matrix on
/// the master and scatters blocks to workers).
pub fn extract_row_block(a: &Csr, size: usize, rank: usize) -> Csr {
    let range = row_range(a.nrows(), size, rank);
    let rows: Vec<usize> = range.collect();
    let cols: Vec<usize> = (0..a.ncols()).collect();
    a.submatrix(&rows, &cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::spawn_world;
    use pgse_sparsela::pcg::{pcg, CgOptions, Preconditioner};
    use pgse_sparsela::Coo;

    fn laplacian2d(k: usize) -> Csr {
        let n = k * k;
        let idx = |r: usize, c: usize| r * k + c;
        let mut coo = Coo::new(n, n);
        for r in 0..k {
            for c in 0..k {
                let i = idx(r, c);
                coo.push(i, i, 5.0);
                if r + 1 < k {
                    coo.push(i, idx(r + 1, c), -1.0);
                    coo.push(idx(r + 1, c), i, -1.0);
                }
                if c + 1 < k {
                    coo.push(i, idx(r, c + 1), -1.0);
                    coo.push(idx(r, c + 1), i, -1.0);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn row_ranges_tile_the_matrix() {
        for (n, size) in [(10usize, 3usize), (7, 7), (100, 8), (5, 1)] {
            let mut covered = 0usize;
            for rank in 0..size {
                let r = row_range(n, size, rank);
                assert_eq!(r.start, covered, "n={n} size={size} rank={rank}");
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn row_range_with_fewer_rows_than_ranks() {
        // n < size: the first n ranks own one row each, the rest are empty.
        let (n, size) = (3usize, 5usize);
        let mut covered = 0usize;
        for rank in 0..size {
            let r = row_range(n, size, rank);
            assert_eq!(r.start, covered, "rank {rank}");
            assert_eq!(r.len(), usize::from(rank < n), "rank {rank}");
            covered = r.end;
        }
        assert_eq!(covered, n);
        // Degenerate corners.
        assert_eq!(row_range(0, 4, 0), 0..0);
        assert_eq!(row_range(0, 4, 3), 0..0);
        assert_eq!(row_range(1, 1, 0), 0..1);
    }

    #[test]
    fn row_range_spreads_remainder_over_leading_ranks() {
        // 10 rows over 4 ranks: remainder 2 → sizes 3,3,2,2 (never 4,2,2,2).
        let sizes: Vec<usize> = (0..4).map(|r| row_range(10, 4, r).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        // Generally: sizes are non-increasing and differ by at most one.
        for (n, size) in [(23usize, 7usize), (100, 13), (6, 6), (8, 3)] {
            let sizes: Vec<usize> = (0..size).map(|r| row_range(n, size, r).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n={n} size={size}: {sizes:?}");
            assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "n={n} size={size}: {sizes:?}");
        }
    }

    #[test]
    fn empty_rank_blocks_still_solve() {
        // More ranks than rows: the surplus ranks hold empty blocks but must
        // participate in every collective without corrupting the solve.
        let a = laplacian2d(2); // n = 4
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let size = 6;
        let results = spawn_world(size, |mut comm| {
            let block = extract_row_block(&a, size, comm.rank());
            let range = row_range(n, size, comm.rank());
            dpcg_solve(&mut comm, &block, &b[range], 1e-12, 100).unwrap()
        });
        let ax = a.mul_vec(&results[0].x);
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9);
        }
        for out in &results {
            assert!(out.converged);
            assert_eq!(out.x, results[0].x);
        }
    }

    #[test]
    fn distributed_matches_serial_pcg_on_ieee118_gain() {
        // The paper's actual kernel input: the WLS gain matrix G = HᵀWH of
        // the IEEE-118-like case at flat start (n = 235 states).
        use pgse_estimation::jacobian::{assemble_jacobian, StateSpace};
        use pgse_estimation::telemetry::TelemetryPlan;
        use pgse_grid::cases::ieee118_like;
        use pgse_grid::Ybus;
        use pgse_powerflow::{solve as solve_pf, PfOptions};

        let net = ieee118_like();
        let pf = solve_pf(&net, &PfOptions::default()).expect("power flow");
        let plan = TelemetryPlan::full(&net, vec![net.slack()]);
        let set = plan.generate(&net, &pf, 1.0, 1);
        let space = StateSpace::with_reference(net.n_buses(), net.slack());
        let ybus = Ybus::new(&net);
        let vm = vec![1.0; net.n_buses()];
        let va = vec![0.0; net.n_buses()];
        let h = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
        let gain = h.ata_weighted(&set.weights());
        let n = gain.nrows();
        let mut rhs = vec![0.0; n];
        let wr: Vec<f64> =
            set.values().iter().zip(set.weights()).map(|(z, w)| z * w * 0.01).collect();
        h.spmv_transpose(&wr, &mut rhs);

        let serial = pcg(
            &gain,
            &rhs,
            &Preconditioner::jacobi(&gain).unwrap(),
            &CgOptions { rel_tol: 1e-10, max_iter: 5000, parallel: false },
        )
        .unwrap();
        for size in [2usize, 5] {
            let results = spawn_world(size, |mut comm| {
                let block = extract_row_block(&gain, size, comm.rank());
                let range = row_range(n, size, comm.rank());
                dpcg_solve(&mut comm, &block, &rhs[range], 1e-10, 5000).unwrap()
            });
            let scale = serial.x.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
            for out in &results {
                assert!(out.converged, "size {size}");
                for (p, q) in out.x.iter().zip(&serial.x) {
                    assert!(
                        (p - q).abs() < 1e-6 * scale,
                        "size {size}: {p} vs {q} (scale {scale})"
                    );
                }
            }
            assert_eq!(results[0].x, results[size - 1].x, "ranks disagree at size {size}");
        }
    }

    #[test]
    fn distributed_matches_serial_pcg() {
        let a = laplacian2d(9);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let serial = pcg(
            &a,
            &b,
            &Preconditioner::jacobi(&a).unwrap(),
            &CgOptions { rel_tol: 1e-10, max_iter: 2000, parallel: false },
        )
        .unwrap();
        for size in [1usize, 2, 4] {
            let results = spawn_world(size, |mut comm| {
                let block = extract_row_block(&a, size, comm.rank());
                let range = row_range(n, size, comm.rank());
                let b_local = b[range].to_vec();
                dpcg_solve(&mut comm, &block, &b_local, 1e-10, 2000).unwrap()
            });
            for out in &results {
                assert!(out.converged, "size {size}");
                for (p, q) in out.x.iter().zip(&serial.x) {
                    assert!((p - q).abs() < 1e-7, "size {size}");
                }
            }
            // All ranks agree exactly.
            assert_eq!(results[0].x, results[size - 1].x);
        }
    }

    #[test]
    fn iteration_count_is_rank_independent() {
        let a = laplacian2d(6);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut counts = Vec::new();
        for size in [1usize, 3] {
            let results = spawn_world(size, |mut comm| {
                let block = extract_row_block(&a, size, comm.rank());
                let range = row_range(n, size, comm.rank());
                dpcg_solve(&mut comm, &block, &b[range], 1e-10, 1000).unwrap()
            });
            counts.push(results[0].iterations);
        }
        // The math is identical; only the data layout differs.
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian2d(4);
        let results = spawn_world(2, |mut comm| {
            let block = extract_row_block(&a, 2, comm.rank());
            let range = row_range(16, 2, comm.rank());
            let b = vec![0.0; range.len()];
            dpcg_solve(&mut comm, &block, &b, 1e-10, 100).unwrap()
        });
        assert!(results[0].x.iter().all(|&v| v == 0.0));
        assert_eq!(results[0].iterations, 0);
    }

    #[test]
    fn residual_is_small_on_random_spd() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 6.0);
            if i + 1 < n {
                let w = rng.gen_range(-1.0..1.0);
                coo.push(i, i + 1, w);
                coo.push(i + 1, i, w);
            }
        }
        let a = coo.to_csr();
        let xtrue: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b = a.mul_vec(&xtrue);
        let results = spawn_world(3, |mut comm| {
            let block = extract_row_block(&a, 3, comm.rank());
            let range = row_range(n, 3, comm.rank());
            dpcg_solve(&mut comm, &block, &b[range], 1e-11, 1000).unwrap()
        });
        for (p, q) in results[0].x.iter().zip(&xtrue) {
            assert!((p - q).abs() < 1e-8);
        }
    }
}

//! DC screening tier: rank the full outage list by linearized post-outage
//! loading before any AC machinery runs.
//!
//! [`DcScreener`] factors the reduced (slack-grounded) susceptance
//! Laplacian `B` of the base case **once**, caches the base angle solve
//! `θ = B⁻¹p`, and then prices every single-branch outage as a rank-1
//! downdate `B' = B − w·u·uᵀ` through the Sherman–Morrison identity
//! ([`pgse_sparsela::UpdatedFactor`]): one cached-factor solve of the
//! two-nonzero incidence vector plus O(n + branches) arithmetic per case,
//! against a full refactorization for the cold path. A vanishing
//! Sherman–Morrison denominator is exactly the bridge-removal case, so
//! islanding falls out of the algebra as [`ScreenVerdict::Islanding`]
//! rather than needing a separate connectivity pass.

use pgse_grid::Network;
use pgse_powerflow::PfError;
use pgse_sparsela::{Coo, LaError, SparseCholesky, UpdatedFactor};

use crate::Limits;

/// The outcome of screening one branch outage.
#[derive(Debug, Clone, PartialEq)]
pub enum ScreenVerdict {
    /// The outage disconnects the network: the downdated Laplacian is
    /// singular, there is no post-outage flow pattern to price.
    Islanding,
    /// The network survives; `case` carries the linearized severity.
    Screened(ScreenedCase),
}

/// Linearized severity of one survivable branch outage.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenedCase {
    /// The outaged branch.
    pub branch: usize,
    /// Worst post-outage loading over the remaining branches
    /// (`|flow| / rating`; above 1.0 is a predicted overload).
    pub max_loading: f64,
    /// The branch carrying that worst loading.
    pub worst_branch: usize,
}

/// A base-case DC model with a cached factorization, pricing branch
/// outages by warm rank-1 updates (see module docs).
#[derive(Debug, Clone)]
pub struct DcScreener {
    /// Bus → reduced-system row (`usize::MAX` for the grounded slack).
    pos: Vec<usize>,
    slack: usize,
    /// Cached factor of the reduced base-case susceptance Laplacian.
    chol: SparseCholesky,
    /// Cached base solve `θ = B⁻¹p` (reduced coordinates).
    theta: Vec<f64>,
    /// Per-branch susceptance weight `1/(x·tap)`.
    w: Vec<f64>,
    /// Per-branch endpoint pair.
    ends: Vec<(usize, usize)>,
    /// Per-branch active-power emergency rating derived from the base DC
    /// flows and [`Limits`].
    ratings: Vec<f64>,
}

impl DcScreener {
    /// Builds the screener for `net`: one reduced-Laplacian factorization
    /// and one base angle solve, both cached for the whole sweep.
    ///
    /// # Errors
    /// [`PfError::SingularJacobian`] when the base network is already
    /// disconnected (the reduced Laplacian is then not positive definite).
    pub fn new(net: &Network, limits: &Limits) -> Result<Self, PfError> {
        let n = net.n_buses();
        let slack = net.slack();
        let mut pos = vec![usize::MAX; n];
        let mut k = 0usize;
        for (i, p) in pos.iter_mut().enumerate() {
            if i != slack {
                *p = k;
                k += 1;
            }
        }
        let mut b = Coo::new(k, k);
        let mut w = Vec::with_capacity(net.n_branches());
        let mut ends = Vec::with_capacity(net.n_branches());
        for br in &net.branches {
            let wk = 1.0 / (br.x * br.tap);
            w.push(wk);
            ends.push((br.from, br.to));
            let (f, t) = (pos[br.from], pos[br.to]);
            if f != usize::MAX {
                b.push(f, f, wk);
            }
            if t != usize::MAX {
                b.push(t, t, wk);
            }
            if f != usize::MAX && t != usize::MAX {
                b.push(f, t, -wk);
                b.push(t, f, -wk);
            }
        }
        let chol = SparseCholesky::factor(&b.to_csr())
            .map_err(|e| PfError::SingularJacobian(format!("DC B matrix: {e}")))?;
        let p: Vec<f64> = (0..n)
            .filter(|&i| i != slack)
            .map(|i| net.buses[i].p_injection())
            .collect();
        let theta = chol.solve(&p);
        let ratings = ends
            .iter()
            .zip(&w)
            .map(|(&(f, t), &wk)| {
                let flow = wk * (Self::angle(&pos, &theta, f) - Self::angle(&pos, &theta, t));
                (limits.rating_factor * flow.abs()).max(limits.rating_floor)
            })
            .collect();
        Ok(DcScreener { pos, slack, chol, theta, w, ends, ratings })
    }

    fn angle(pos: &[usize], theta: &[f64], bus: usize) -> f64 {
        if pos[bus] == usize::MAX {
            0.0
        } else {
            theta[pos[bus]]
        }
    }

    /// Number of branches in the screened model.
    pub fn n_branches(&self) -> usize {
        self.w.len()
    }

    /// The derived per-branch DC emergency ratings.
    pub fn ratings(&self) -> &[f64] {
        &self.ratings
    }

    /// The reduced incidence vector `u = e_f − e_t` of branch `k`, the
    /// rank-1 direction of its removal.
    fn incidence(&self, k: usize) -> (Vec<usize>, Vec<f64>) {
        let (f, t) = self.ends[k];
        let mut idx = Vec::with_capacity(2);
        let mut val = Vec::with_capacity(2);
        if self.pos[f] != usize::MAX {
            idx.push(self.pos[f]);
            val.push(1.0);
        }
        if self.pos[t] != usize::MAX {
            idx.push(self.pos[t]);
            val.push(-1.0);
        }
        (idx, val)
    }

    /// Prices the outage of branch `k` by a warm rank-1 update: one cached
    /// solve + O(n + branches), no refactorization.
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn screen_outage(&self, k: usize) -> ScreenVerdict {
        let (u_idx, u_val) = self.incidence(k);
        let upd = match UpdatedFactor::new(&self.chol, &u_idx, &u_val, -self.w[k]) {
            Ok(upd) => upd,
            Err(LaError::SingularUpdate { .. }) => return ScreenVerdict::Islanding,
            Err(e) => unreachable!("rank-1 screening can only fail singular: {e}"),
        };
        let theta = upd.update_solution(&self.theta);
        let mut max_loading = 0.0f64;
        let mut worst_branch = k;
        for (j, (&(f, t), &wj)) in self.ends.iter().zip(&self.w).enumerate() {
            if j == k {
                continue;
            }
            let flow = wj * (Self::angle(&self.pos, &theta, f) - Self::angle(&self.pos, &theta, t));
            let loading = flow.abs() / self.ratings[j];
            if loading > max_loading {
                max_loading = loading;
                worst_branch = j;
            }
        }
        ScreenVerdict::Screened(ScreenedCase { branch: k, max_loading, worst_branch })
    }

    /// Full-bus post-outage angles (slack at 0) of the warm update, or
    /// `None` on islanding — the warm half of the warm-vs-cold conformance
    /// check (`solve_dc` of the branch-removed network is the cold half).
    pub fn post_outage_angles(&self, k: usize) -> Option<Vec<f64>> {
        let (u_idx, u_val) = self.incidence(k);
        let upd = UpdatedFactor::new(&self.chol, &u_idx, &u_val, -self.w[k]).ok()?;
        let theta = upd.update_solution(&self.theta);
        let mut va = vec![0.0; self.pos.len()];
        for (bus, &p) in self.pos.iter().enumerate() {
            if p != usize::MAX {
                va[bus] = theta[p];
            }
        }
        debug_assert_eq!(va[self.slack], 0.0);
        Some(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgse_grid::cases::{ieee118_like, ieee14};
    use pgse_powerflow::solve_dc;

    #[test]
    fn warm_outage_angles_match_cold_dc_solve() {
        let net = ieee14();
        let scr = DcScreener::new(&net, &Limits::default()).unwrap();
        for k in 0..net.n_branches() {
            let Some(warm) = scr.post_outage_angles(k) else {
                continue; // islanding; pinned below
            };
            let mut reduced = net.clone();
            reduced.branches.remove(k);
            let cold = solve_dc(&reduced).unwrap();
            for (bus, (a, b)) in warm.iter().zip(&cold.va).enumerate() {
                assert!((a - b).abs() < 1e-9, "outage {k} bus {bus}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn islanding_outage_is_flagged_by_singular_update() {
        let net = ieee14();
        let scr = DcScreener::new(&net, &Limits::default()).unwrap();
        // Branch 13 (7-8) is bus 8's only connection.
        assert_eq!(scr.screen_outage(13), ScreenVerdict::Islanding);
        assert!(scr.post_outage_angles(13).is_none());
    }

    #[test]
    fn base_case_loads_within_ratings() {
        let net = ieee118_like();
        let scr = DcScreener::new(&net, &Limits::default()).unwrap();
        // Every rating was derived as a multiple (>1) of the base flow, so
        // a screened outage that predicts loading ≤ 1 everywhere is cleared
        // consistently with the base case being secure.
        for k in 0..scr.n_branches() {
            if let ScreenVerdict::Screened(c) = scr.screen_outage(k) {
                assert!(c.max_loading.is_finite());
                assert!(c.worst_branch != k);
            }
        }
    }

    #[test]
    fn heavy_line_outage_ranks_above_light_line_outage() {
        let net = ieee14();
        let scr = DcScreener::new(&net, &Limits::default()).unwrap();
        // Outage of branch 0 (slack's main export path) must predict more
        // stress than the lightest screened case.
        let loadings: Vec<(usize, f64)> = (0..scr.n_branches())
            .filter_map(|k| match scr.screen_outage(k) {
                ScreenVerdict::Screened(c) => Some((k, c.max_loading)),
                ScreenVerdict::Islanding => None,
            })
            .collect();
        let heavy = loadings.iter().find(|(k, _)| *k == 0).unwrap().1;
        let min = loadings.iter().map(|(_, l)| *l).fold(f64::INFINITY, f64::min);
        assert!(heavy > min, "heavy {heavy} vs lightest {min}");
    }
}

//! # pgse-contingency
//!
//! Massive N-1 contingency analysis — the companion HPC application the
//! paper's state-estimation kernel descends from (Chen, Huang &
//! Chavarría-Miranda \[2\]: *"Performance evaluation of counter-based dynamic
//! load balancing schemes for massive contingency analysis"*), and one of
//! the downstream consumers of the estimated state the paper lists
//! (§I: "contingency analysis, optimal power flow, economic dispatch…").
//!
//! The crate provides the tiers the streaming scenario engine
//! (`pgse-stream`'s `scenarios` module) composes:
//! * [`islanding_outages`] / [`screen`] — O(buses + branches) bridge
//!   analysis of the branch multigraph separating survivable outages from
//!   islanding ones;
//! * [`DcScreener`] — the cheap screening tier: cached base-case
//!   factorization + Sherman–Morrison rank-1 outage pricing ([`dc`]);
//! * [`analyze_one`] / [`analyze_one_warm`] — the expensive tier: full AC
//!   re-solve (flat- or warm-started from the base operating point) with
//!   voltage/loading limit checks;
//! * [`run_static`] / [`run_dynamic`] — distribute the contingency list
//!   over worker threads with either static pre-partitioning or the
//!   **counter-based dynamic scheme** of \[2\] (a shared atomic task counter
//!   each worker increments to claim its next case), timed through
//!   `pgse-obs` span recorders (`scenario.case` spans; no raw `Instant`
//!   in this crate), plus the balance metrics that paper compares.

pub mod dc;

pub use dc::{DcScreener, ScreenVerdict, ScreenedCase};

use std::sync::atomic::{AtomicUsize, Ordering};

use pgse_grid::Network;
use pgse_obs::{Recorder, ScopeReport};
use pgse_powerflow::{solve, solve_warm, PfOptions, PfSolution};

/// One contingency case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contingency {
    /// Outage of one branch (by index into `net.branches`).
    BranchOutage(usize),
}

impl Contingency {
    /// The outaged branch index.
    pub fn branch(&self) -> usize {
        let Contingency::BranchOutage(k) = *self;
        k
    }
}

/// A post-contingency limit violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Bus voltage outside `[v_min, v_max]`.
    Voltage { bus: usize, vm: f64 },
    /// Branch apparent-power loading above its emergency rating.
    Overload { branch: usize, loading: f64, rating: f64 },
}

/// Operating limits used by the checker.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Minimum bus voltage (p.u.).
    pub v_min: f64,
    /// Maximum bus voltage (p.u.).
    pub v_max: f64,
    /// Emergency rating as a multiple of the base-case branch flow.
    pub rating_factor: f64,
    /// Floor on the emergency rating (p.u.), so lightly-loaded branches
    /// are not flagged by tiny base flows.
    pub rating_floor: f64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { v_min: 0.92, v_max: 1.10, rating_factor: 1.5, rating_floor: 0.5 }
    }
}

/// The outcome of one contingency solve.
#[derive(Debug, Clone)]
pub struct CtgResult {
    /// The analyzed case.
    pub contingency: Contingency,
    /// Whether the post-contingency power flow converged (non-convergence
    /// is itself a severe flag).
    pub converged: bool,
    /// Limit violations found.
    pub violations: Vec<Violation>,
    /// Newton iterations the solve took (per-case cost varies — the reason
    /// dynamic balancing wins in \[2\]).
    pub iterations: usize,
}

impl CtgResult {
    /// Severe cases: diverged or violating.
    pub fn is_insecure(&self) -> bool {
        !self.converged || !self.violations.is_empty()
    }
}

/// Branch indices whose outage disconnects the network: the **bridges** of
/// the branch multigraph, found by one iterative Tarjan DFS in
/// O(buses + branches) — replacing the old clone-the-network-and-BFS per
/// branch screen, which was O(branches · (buses + branches)).
///
/// Parallel branches are handled by edge identity (a branch with a
/// parallel companion is never a bridge), and self-loops can never
/// disconnect anything. Assumes the base network is connected; on a
/// disconnected base the bridges of each component are still returned.
pub fn islanding_outages(net: &Network) -> Vec<usize> {
    let n = net.n_buses();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (k, br) in net.branches.iter().enumerate() {
        if br.from == br.to {
            continue;
        }
        adj[br.from].push((br.to, k));
        adj[br.to].push((br.from, k));
    }
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut timer = 0usize;
    let mut bridges = Vec::new();
    // Explicit DFS stack: (node, entering branch id, next adjacency slot).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, usize::MAX, 0));
        while let Some(top) = stack.last_mut() {
            let (u, pe) = (top.0, top.1);
            if let Some(&(v, e)) = adj[u].get(top.2) {
                top.2 += 1;
                if e == pe {
                    // The tree edge we came in on; a *parallel* branch has
                    // a different id and correctly counts as a back edge.
                    continue;
                }
                if disc[v] == usize::MAX {
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, e, 0));
                } else {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                let (u, pe, _) = stack.pop().expect("frame present");
                if let Some(&(p, _, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        bridges.push(pe);
                    }
                }
            }
        }
    }
    bridges.sort_unstable();
    bridges
}

/// Enumerates all single-branch outages that leave the network connected
/// (islanding outages need remedial-action modelling, out of scope here —
/// and in \[2\]). The complement of [`islanding_outages`].
pub fn screen(net: &Network) -> Vec<Contingency> {
    let mut islands = vec![false; net.n_branches()];
    for k in islanding_outages(net) {
        islands[k] = true;
    }
    (0..net.n_branches())
        .filter(|&k| !islands[k])
        .map(Contingency::BranchOutage)
        .collect()
}

/// Emergency ratings derived from the base case.
pub fn ratings(_net: &Network, base: &PfSolution, limits: &Limits) -> Vec<f64> {
    ratings_from_flows(&base.flows, limits)
}

/// Emergency ratings derived from an arbitrary operating state — the
/// streaming path, where the base case arrives as an estimated vm/va
/// profile rather than a solved [`PfSolution`].
pub fn ratings_from_state(net: &Network, vm: &[f64], va: &[f64], limits: &Limits) -> Vec<f64> {
    ratings_from_flows(&pgse_powerflow::branch_flows(net, vm, va), limits)
}

fn ratings_from_flows(flows: &[pgse_powerflow::BranchFlow], limits: &Limits) -> Vec<f64> {
    flows
        .iter()
        .map(|f| {
            let s = (f.p_from * f.p_from + f.q_from * f.q_from).sqrt();
            (limits.rating_factor * s).max(limits.rating_floor)
        })
        .collect()
}

/// Analyzes one contingency from a flat start: removes the branch,
/// re-solves, checks limits.
pub fn analyze_one(
    net: &Network,
    contingency: Contingency,
    ratings: &[f64],
    limits: &Limits,
) -> CtgResult {
    analyze_one_from(net, contingency, ratings, limits, None)
}

/// [`analyze_one`] warm-started from the base operating point — the
/// post-outage solution sits close to the base case, so Newton converges
/// in fewer iterations than from a flat start.
pub fn analyze_one_warm(
    net: &Network,
    contingency: Contingency,
    ratings: &[f64],
    limits: &Limits,
    base: &PfSolution,
) -> CtgResult {
    analyze_one_from(net, contingency, ratings, limits, Some((&base.vm, &base.va)))
}

/// Shared body of the cold/warm single-case analysis.
pub fn analyze_one_from(
    net: &Network,
    contingency: Contingency,
    ratings: &[f64],
    limits: &Limits,
    start: Option<(&[f64], &[f64])>,
) -> CtgResult {
    let Contingency::BranchOutage(k) = contingency;
    let mut post = net.clone();
    post.branches.remove(k);
    let opts = PfOptions::default();
    let solved = match start {
        Some((vm0, va0)) => solve_warm(&post, &opts, vm0, va0),
        None => solve(&post, &opts),
    };
    match solved {
        Err(_) => CtgResult { contingency, converged: false, violations: Vec::new(), iterations: 0 },
        Ok(sol) => {
            let mut violations = Vec::new();
            for (bus, &vm) in sol.vm.iter().enumerate() {
                if vm < limits.v_min || vm > limits.v_max {
                    violations.push(Violation::Voltage { bus, vm });
                }
            }
            for (kk, f) in sol.flows.iter().enumerate() {
                // Map the post-contingency branch index back to the base
                // network's numbering (indices ≥ k shift by one).
                let orig = if kk >= k { kk + 1 } else { kk };
                let s = (f.p_from * f.p_from + f.q_from * f.q_from).sqrt();
                if s > ratings[orig] {
                    violations.push(Violation::Overload {
                        branch: orig,
                        loading: s,
                        rating: ratings[orig],
                    });
                }
            }
            CtgResult { contingency, converged: true, violations, iterations: sol.iterations }
        }
    }
}

/// A completed sweep with the balance metrics \[2\] reports.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-case results, in contingency-list order.
    pub results: Vec<CtgResult>,
    /// Cases processed by each worker.
    pub tasks_per_worker: Vec<usize>,
    /// Busy nanoseconds of each worker (sum of its `scenario.case` span
    /// durations).
    pub busy_ns_per_worker: Vec<u64>,
    /// Wall nanoseconds of the sweep.
    pub wall_ns: u64,
    /// The per-worker obs scopes (`ctg.worker{w}`) plus the sweep scope
    /// (`ctg.sweep`), mergeable into an `ObsReport`.
    pub scopes: Vec<ScopeReport>,
}

impl SweepReport {
    /// Load-imbalance ratio across workers: max busy time over mean busy
    /// time (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.busy_ns_per_worker.iter().map(|&b| b as f64).sum();
        let mean = total / self.busy_ns_per_worker.len() as f64;
        let max = self.busy_ns_per_worker.iter().map(|&b| b as f64).fold(0.0f64, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Insecure cases found.
    pub fn insecure(&self) -> Vec<&CtgResult> {
        self.results.iter().filter(|r| r.is_insecure()).collect()
    }
}

/// Static scheme: the list is pre-split into contiguous chunks, one per
/// worker. Every case warm-starts from the base operating point.
pub fn run_static(
    net: &Network,
    base: &PfSolution,
    ctgs: &[Contingency],
    n_workers: usize,
    limits: &Limits,
) -> SweepReport {
    assert!(n_workers > 0, "need at least one worker");
    let rat = ratings(net, base, limits);
    let chunk = ctgs.len().div_ceil(n_workers);
    // Pre-partitioned: worker w owns one contiguous chunk, tracked by a
    // private cursor.
    let cursors: Vec<AtomicUsize> =
        (0..n_workers).map(|w| AtomicUsize::new((w * chunk).min(ctgs.len()))).collect();
    run_sweep(
        n_workers,
        ctgs.len(),
        |w| {
            let hi = ((w + 1) * chunk).min(ctgs.len());
            let i = cursors[w].fetch_add(1, Ordering::Relaxed);
            (i < hi).then_some(i)
        },
        |i, rec| analyze_case(net, base, ctgs, &rat, limits, i, rec),
    )
}

/// Counter-based dynamic scheme of \[2\]: workers claim the next case by a
/// fetch-add on a shared counter, so fast workers absorb the expensive
/// cases automatically. Every case warm-starts from the base operating
/// point.
pub fn run_dynamic(
    net: &Network,
    base: &PfSolution,
    ctgs: &[Contingency],
    n_workers: usize,
    limits: &Limits,
) -> SweepReport {
    assert!(n_workers > 0, "need at least one worker");
    let rat = ratings(net, base, limits);
    let n = ctgs.len();
    let counter = AtomicUsize::new(0);
    run_sweep(
        n_workers,
        n,
        |_w| {
            let i = counter.fetch_add(1, Ordering::Relaxed);
            (i < n).then_some(i)
        },
        |i, rec| analyze_case(net, base, ctgs, &rat, limits, i, rec),
    )
}

fn analyze_case(
    net: &Network,
    base: &PfSolution,
    ctgs: &[Contingency],
    rat: &[f64],
    limits: &Limits,
    i: usize,
    rec: &Recorder,
) -> CtgResult {
    let mut sp = rec.span_at("scenario.case", i as u64);
    let r = analyze_one_warm(net, ctgs[i], rat, limits, base);
    sp.record("branch", ctgs[i].branch());
    sp.record("converged", r.converged);
    sp.record("iterations", r.iterations);
    sp.record("violations", r.violations.len());
    r
}

/// Shared sweep skeleton: spawn `n_workers` scoped threads, let each claim
/// its next case via `next` (interleaved with the solves, so dynamic
/// claiming actually balances), analyze with `work` under a per-worker obs
/// recorder, and assemble the report (busy time = per-worker
/// `scenario.case` span totals; wall time = the `ctg.sweep` span).
fn run_sweep(
    n_workers: usize,
    n_cases: usize,
    next: impl Fn(usize) -> Option<usize> + Sync,
    work: impl Fn(usize, &Recorder) -> CtgResult + Sync,
) -> SweepReport {
    let sweep_rec = Recorder::new("ctg.sweep");
    let per_worker: Vec<(Vec<(usize, CtgResult)>, ScopeReport)> = {
        let mut sweep_span = sweep_rec.span("scenario.sweep");
        sweep_span.record("workers", n_workers);
        sweep_span.record("cases", n_cases);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|w| {
                    let next = &next;
                    let work = &work;
                    scope.spawn(move || {
                        let rec = Recorder::new(&format!("ctg.worker{w}"));
                        let mut out: Vec<(usize, CtgResult)> = Vec::new();
                        while let Some(i) = next(w) {
                            out.push((i, work(i, &rec)));
                        }
                        (out, rec.snapshot())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
    };
    let wall_ns =
        sweep_rec.snapshot().spans.first().map(|s| s.wall_nanos).unwrap_or(0);
    let mut slots: Vec<Option<CtgResult>> = vec![None; n_cases];
    let mut tasks_per_worker = Vec::with_capacity(per_worker.len());
    let mut busy_ns_per_worker = Vec::with_capacity(per_worker.len());
    let mut scopes = Vec::with_capacity(per_worker.len() + 1);
    for (cases, scope_rep) in per_worker {
        tasks_per_worker.push(cases.len());
        busy_ns_per_worker.push(
            scope_rep
                .spans
                .iter()
                .filter(|s| s.name == "scenario.case")
                .map(|s| s.wall_nanos)
                .sum(),
        );
        scopes.push(scope_rep);
        for (i, r) in cases {
            slots[i] = Some(r);
        }
    }
    scopes.push(sweep_rec.snapshot());
    SweepReport {
        results: slots.into_iter().map(|s| s.expect("every case analyzed")).collect(),
        tasks_per_worker,
        busy_ns_per_worker,
        wall_ns,
        scopes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgse_grid::cases::{ieee118_like, ieee14};

    fn base(net: &Network) -> PfSolution {
        solve(net, &PfOptions::default()).unwrap()
    }

    #[test]
    fn screening_excludes_islanding_outages() {
        let net = ieee14();
        let ctgs = screen(&net);
        // Branch 13 (7-8) is bus 8's only connection: its outage islands.
        assert!(!ctgs.contains(&Contingency::BranchOutage(13)));
        assert!(ctgs.len() < net.n_branches());
        assert!(ctgs.len() >= net.n_branches() - 3);
    }

    #[test]
    fn bridge_screen_agrees_with_clone_and_check() {
        // The O(N+B) bridge screen must reproduce the old remove-one-and-
        // test-connectivity semantics exactly.
        for net in [ieee14(), ieee118_like()] {
            let bridges = islanding_outages(&net);
            for k in 0..net.n_branches() {
                let mut reduced = net.clone();
                reduced.branches.remove(k);
                assert_eq!(
                    !reduced.is_connected(),
                    bridges.contains(&k),
                    "branch {k}: bridge screen vs connectivity check"
                );
            }
        }
    }

    #[test]
    fn parallel_branches_are_never_bridges() {
        let mut net = ieee14();
        // Duplicate branch 13 (7-8), the only islanding outage: with a
        // parallel companion neither copy is a bridge any more.
        let dup = net.branches[13].clone();
        net.branches.push(dup);
        let bridges = islanding_outages(&net);
        assert!(!bridges.contains(&13), "{bridges:?}");
        assert!(!bridges.contains(&(net.n_branches() - 1)), "{bridges:?}");
    }

    #[test]
    fn base_case_within_its_own_ratings() {
        let net = ieee14();
        let b = base(&net);
        let limits = Limits::default();
        let rat = ratings(&net, &b, &limits);
        for (k, f) in b.flows.iter().enumerate() {
            let s = (f.p_from * f.p_from + f.q_from * f.q_from).sqrt();
            assert!(s <= rat[k] + 1e-12, "branch {k}");
        }
    }

    #[test]
    fn single_outage_analysis_runs() {
        let net = ieee14();
        let b = base(&net);
        let limits = Limits::default();
        let rat = ratings(&net, &b, &limits);
        let r = analyze_one(&net, Contingency::BranchOutage(0), &rat, &limits);
        assert!(r.converged);
        assert!(r.iterations > 0);
    }

    /// How far a violation sits from its threshold: flips between two
    /// solves of the same case are only legitimate inside solver tolerance.
    fn margin(v: &Violation, limits: &Limits) -> f64 {
        match v {
            Violation::Voltage { vm, .. } => {
                (vm - limits.v_min).abs().min((vm - limits.v_max).abs())
            }
            Violation::Overload { loading, rating, .. } => (loading - rating).abs(),
        }
    }

    fn same_site(a: &Violation, b: &Violation) -> bool {
        match (a, b) {
            (Violation::Voltage { bus: x, .. }, Violation::Voltage { bus: y, .. }) => x == y,
            (Violation::Overload { branch: x, .. }, Violation::Overload { branch: y, .. }) => {
                x == y
            }
            _ => false,
        }
    }

    #[test]
    fn warm_analysis_agrees_with_cold_in_fewer_iterations() {
        let net = ieee14();
        let b = base(&net);
        let limits = Limits { rating_factor: 1.05, rating_floor: 0.01, ..Limits::default() };
        let rat = ratings(&net, &b, &limits);
        for ctg in screen(&net) {
            let cold = analyze_one(&net, ctg, &rat, &limits);
            let warm = analyze_one_warm(&net, ctg, &rat, &limits, &b);
            assert_eq!(cold.converged, warm.converged, "{ctg:?}");
            // Both solves land on the same operating point to tolerance, so
            // any violation found by one and not the other must sit within
            // solver tolerance of its threshold.
            for (from, to) in [(&cold, &warm), (&warm, &cold)] {
                for v in &from.violations {
                    if !to.violations.iter().any(|w| same_site(v, w)) {
                        assert!(margin(v, &limits) < 1e-6, "{ctg:?}: unmatched {v:?}");
                    }
                }
            }
            if cold.converged {
                assert!(warm.iterations <= cold.iterations, "{ctg:?}");
            }
        }
    }

    #[test]
    fn tight_ratings_flag_overloads() {
        // With ratings barely above base flows, losing a heavy line must
        // overload its parallel paths.
        let net = ieee14();
        let b = base(&net);
        let limits = Limits { rating_factor: 1.05, rating_floor: 0.01, ..Limits::default() };
        let rat = ratings(&net, &b, &limits);
        // Outage of branch 0 (the 1-2 line carrying most slack output).
        let r = analyze_one(&net, Contingency::BranchOutage(0), &rat, &limits);
        assert!(r.is_insecure(), "heavy-line outage must violate tight ratings");
        assert!(r.violations.iter().any(|v| matches!(v, Violation::Overload { .. })));
    }

    #[test]
    fn static_and_dynamic_schemes_agree_on_results() {
        let net = ieee14();
        let b = base(&net);
        let limits = Limits::default();
        let ctgs = screen(&net);
        let s = run_static(&net, &b, &ctgs, 3, &limits);
        let d = run_dynamic(&net, &b, &ctgs, 3, &limits);
        assert_eq!(s.results.len(), d.results.len());
        for (a, b) in s.results.iter().zip(&d.results) {
            assert_eq!(a.contingency, b.contingency);
            assert_eq!(a.converged, b.converged);
            assert_eq!(a.violations, b.violations);
        }
        assert_eq!(s.tasks_per_worker.iter().sum::<usize>(), ctgs.len());
        assert_eq!(d.tasks_per_worker.iter().sum::<usize>(), ctgs.len());
    }

    #[test]
    fn dynamic_scheme_distributes_work() {
        let net = ieee118_like();
        let b = base(&net);
        let limits = Limits::default();
        let ctgs: Vec<Contingency> = screen(&net).into_iter().take(40).collect();
        let d = run_dynamic(&net, &b, &ctgs, 4, &limits);
        // Every worker claimed at least one case, none claimed everything.
        assert!(d.tasks_per_worker.iter().all(|&t| t > 0), "{:?}", d.tasks_per_worker);
        assert!(d.tasks_per_worker.iter().all(|&t| t < ctgs.len()));
        assert!(d.imbalance() >= 1.0);
    }

    #[test]
    fn single_worker_processes_everything() {
        let net = ieee14();
        let b = base(&net);
        let ctgs = screen(&net);
        let r = run_static(&net, &b, &ctgs, 1, &Limits::default());
        assert_eq!(r.tasks_per_worker, vec![ctgs.len()]);
        assert!(r.imbalance() - 1.0 < 1e-9);
    }

    #[test]
    fn sweep_report_carries_case_spans() {
        let net = ieee14();
        let b = base(&net);
        let ctgs = screen(&net);
        let r = run_dynamic(&net, &b, &ctgs, 2, &Limits::default());
        let case_spans: usize = r
            .scopes
            .iter()
            .flat_map(|s| &s.spans)
            .filter(|s| s.name == "scenario.case")
            .count();
        assert_eq!(case_spans, ctgs.len());
        assert!(r.wall_ns > 0);
        assert!(r.busy_ns_per_worker.iter().all(|&b| b > 0));
        // No raw Instant left: the wall clock is the sweep span itself.
        let sweep = r.scopes.iter().find(|s| s.scope == "ctg.sweep").unwrap();
        assert_eq!(sweep.spans[0].name, "scenario.sweep");
        assert_eq!(sweep.spans[0].wall_nanos, r.wall_ns);
    }
}

//! # pgse-contingency
//!
//! Massive N-1 contingency analysis — the companion HPC application the
//! paper's state-estimation kernel descends from (Chen, Huang &
//! Chavarría-Miranda [2]: *"Performance evaluation of counter-based dynamic
//! load balancing schemes for massive contingency analysis"*), and one of
//! the downstream consumers of the estimated state the paper lists
//! (§I: "contingency analysis, optimal power flow, economic dispatch…").
//!
//! The module provides:
//! * [`screen`] — enumerate non-islanding branch outages;
//! * [`analyze_one`] — re-solve the AC power flow with one branch out and
//!   check voltage/loading limits against the base case;
//! * [`run_static`] / [`run_dynamic`] — distribute the contingency list
//!   over worker threads with either static pre-partitioning or the
//!   **counter-based dynamic scheme** of [2] (a shared atomic task counter
//!   each worker increments to claim its next case), plus the balance
//!   metrics that paper compares.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use pgse_grid::Network;
use pgse_powerflow::{solve, PfOptions, PfSolution};

/// One contingency case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contingency {
    /// Outage of one branch (by index into `net.branches`).
    BranchOutage(usize),
}

/// A post-contingency limit violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Bus voltage outside `[v_min, v_max]`.
    Voltage { bus: usize, vm: f64 },
    /// Branch apparent-power loading above its emergency rating.
    Overload { branch: usize, loading: f64, rating: f64 },
}

/// Operating limits used by the checker.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Minimum bus voltage (p.u.).
    pub v_min: f64,
    /// Maximum bus voltage (p.u.).
    pub v_max: f64,
    /// Emergency rating as a multiple of the base-case branch flow.
    pub rating_factor: f64,
    /// Floor on the emergency rating (p.u.), so lightly-loaded branches
    /// are not flagged by tiny base flows.
    pub rating_floor: f64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { v_min: 0.92, v_max: 1.10, rating_factor: 1.5, rating_floor: 0.5 }
    }
}

/// The outcome of one contingency solve.
#[derive(Debug, Clone)]
pub struct CtgResult {
    /// The analyzed case.
    pub contingency: Contingency,
    /// Whether the post-contingency power flow converged (non-convergence
    /// is itself a severe flag).
    pub converged: bool,
    /// Limit violations found.
    pub violations: Vec<Violation>,
    /// Newton iterations the solve took (per-case cost varies — the reason
    /// dynamic balancing wins in [2]).
    pub iterations: usize,
}

impl CtgResult {
    /// Severe cases: diverged or violating.
    pub fn is_insecure(&self) -> bool {
        !self.converged || !self.violations.is_empty()
    }
}

/// Enumerates all single-branch outages that leave the network connected
/// (islanding outages need remedial-action modelling, out of scope here —
/// and in [2]).
pub fn screen(net: &Network) -> Vec<Contingency> {
    (0..net.n_branches())
        .filter(|&k| {
            let mut reduced = net.clone();
            reduced.branches.remove(k);
            reduced.is_connected()
        })
        .map(Contingency::BranchOutage)
        .collect()
}

/// Emergency ratings derived from the base case.
pub fn ratings(net: &Network, base: &PfSolution, limits: &Limits) -> Vec<f64> {
    net.branches
        .iter()
        .enumerate()
        .map(|(k, _)| {
            let f = &base.flows[k];
            let s = (f.p_from * f.p_from + f.q_from * f.q_from).sqrt();
            (limits.rating_factor * s).max(limits.rating_floor)
        })
        .collect()
}

/// Analyzes one contingency: removes the branch, re-solves, checks limits.
pub fn analyze_one(
    net: &Network,
    contingency: Contingency,
    ratings: &[f64],
    limits: &Limits,
) -> CtgResult {
    let Contingency::BranchOutage(k) = contingency;
    let mut post = net.clone();
    post.branches.remove(k);
    match solve(&post, &PfOptions::default()) {
        Err(_) => CtgResult { contingency, converged: false, violations: Vec::new(), iterations: 0 },
        Ok(sol) => {
            let mut violations = Vec::new();
            for (bus, &vm) in sol.vm.iter().enumerate() {
                if vm < limits.v_min || vm > limits.v_max {
                    violations.push(Violation::Voltage { bus, vm });
                }
            }
            for (kk, f) in sol.flows.iter().enumerate() {
                // Map the post-contingency branch index back to the base
                // network's numbering (indices ≥ k shift by one).
                let orig = if kk >= k { kk + 1 } else { kk };
                let s = (f.p_from * f.p_from + f.q_from * f.q_from).sqrt();
                if s > ratings[orig] {
                    violations.push(Violation::Overload {
                        branch: orig,
                        loading: s,
                        rating: ratings[orig],
                    });
                }
            }
            CtgResult { contingency, converged: true, violations, iterations: sol.iterations }
        }
    }
}

/// A completed sweep with the balance metrics [2] reports.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-case results, in contingency-list order.
    pub results: Vec<CtgResult>,
    /// Cases processed by each worker.
    pub tasks_per_worker: Vec<usize>,
    /// Busy time of each worker.
    pub busy_per_worker: Vec<Duration>,
    /// Wall time of the sweep.
    pub wall: Duration,
}

impl SweepReport {
    /// Load-imbalance ratio across workers: max busy time over mean busy
    /// time (1.0 is perfect).
    pub fn imbalance(&self) -> f64 {
        let total: f64 = self.busy_per_worker.iter().map(Duration::as_secs_f64).sum();
        let mean = total / self.busy_per_worker.len() as f64;
        let max = self
            .busy_per_worker
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0f64, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Insecure cases found.
    pub fn insecure(&self) -> Vec<&CtgResult> {
        self.results.iter().filter(|r| r.is_insecure()).collect()
    }
}

/// Static scheme: the list is pre-split into contiguous chunks, one per
/// worker.
pub fn run_static(
    net: &Network,
    base: &PfSolution,
    ctgs: &[Contingency],
    n_workers: usize,
    limits: &Limits,
) -> SweepReport {
    assert!(n_workers > 0, "need at least one worker");
    let rat = ratings(net, base, limits);
    let chunk = ctgs.len().div_ceil(n_workers);
    let wall0 = Instant::now();
    let per_worker: Vec<(Vec<(usize, CtgResult)>, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                let rat = &rat;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let lo = (w * chunk).min(ctgs.len());
                    let hi = ((w + 1) * chunk).min(ctgs.len());
                    let out: Vec<(usize, CtgResult)> = (lo..hi)
                        .map(|i| (i, analyze_one(net, ctgs[i], rat, limits)))
                        .collect();
                    (out, t0.elapsed())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    assemble_report(per_worker, ctgs.len(), wall0.elapsed())
}

/// Counter-based dynamic scheme of [2]: workers claim the next case by a
/// fetch-add on a shared counter, so fast workers absorb the expensive
/// cases automatically.
pub fn run_dynamic(
    net: &Network,
    base: &PfSolution,
    ctgs: &[Contingency],
    n_workers: usize,
    limits: &Limits,
) -> SweepReport {
    assert!(n_workers > 0, "need at least one worker");
    let rat = ratings(net, base, limits);
    let counter = AtomicUsize::new(0);
    let wall0 = Instant::now();
    let per_worker: Vec<(Vec<(usize, CtgResult)>, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let counter = &counter;
                let rat = &rat;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let mut out = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= ctgs.len() {
                            break;
                        }
                        out.push((i, analyze_one(net, ctgs[i], rat, limits)));
                    }
                    (out, t0.elapsed())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    assemble_report(per_worker, ctgs.len(), wall0.elapsed())
}

fn assemble_report(
    per_worker: Vec<(Vec<(usize, CtgResult)>, Duration)>,
    n_cases: usize,
    wall: Duration,
) -> SweepReport {
    let mut slots: Vec<Option<CtgResult>> = vec![None; n_cases];
    let mut tasks_per_worker = Vec::with_capacity(per_worker.len());
    let mut busy_per_worker = Vec::with_capacity(per_worker.len());
    for (cases, busy) in per_worker {
        tasks_per_worker.push(cases.len());
        busy_per_worker.push(busy);
        for (i, r) in cases {
            slots[i] = Some(r);
        }
    }
    SweepReport {
        results: slots.into_iter().map(|s| s.expect("every case analyzed")).collect(),
        tasks_per_worker,
        busy_per_worker,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgse_grid::cases::{ieee118_like, ieee14};

    fn base(net: &Network) -> PfSolution {
        solve(net, &PfOptions::default()).unwrap()
    }

    #[test]
    fn screening_excludes_islanding_outages() {
        let net = ieee14();
        let ctgs = screen(&net);
        // Branch 13 (7-8) is bus 8's only connection: its outage islands.
        assert!(!ctgs.contains(&Contingency::BranchOutage(13)));
        assert!(ctgs.len() < net.n_branches());
        assert!(ctgs.len() >= net.n_branches() - 3);
    }

    #[test]
    fn base_case_within_its_own_ratings() {
        let net = ieee14();
        let b = base(&net);
        let limits = Limits::default();
        let rat = ratings(&net, &b, &limits);
        for (k, f) in b.flows.iter().enumerate() {
            let s = (f.p_from * f.p_from + f.q_from * f.q_from).sqrt();
            assert!(s <= rat[k] + 1e-12, "branch {k}");
        }
    }

    #[test]
    fn single_outage_analysis_runs() {
        let net = ieee14();
        let b = base(&net);
        let limits = Limits::default();
        let rat = ratings(&net, &b, &limits);
        let r = analyze_one(&net, Contingency::BranchOutage(0), &rat, &limits);
        assert!(r.converged);
        assert!(r.iterations > 0);
    }

    #[test]
    fn tight_ratings_flag_overloads() {
        // With ratings barely above base flows, losing a heavy line must
        // overload its parallel paths.
        let net = ieee14();
        let b = base(&net);
        let limits = Limits { rating_factor: 1.05, rating_floor: 0.01, ..Limits::default() };
        let rat = ratings(&net, &b, &limits);
        // Outage of branch 0 (the 1-2 line carrying most slack output).
        let r = analyze_one(&net, Contingency::BranchOutage(0), &rat, &limits);
        assert!(r.is_insecure(), "heavy-line outage must violate tight ratings");
        assert!(r.violations.iter().any(|v| matches!(v, Violation::Overload { .. })));
    }

    #[test]
    fn static_and_dynamic_schemes_agree_on_results() {
        let net = ieee14();
        let b = base(&net);
        let limits = Limits::default();
        let ctgs = screen(&net);
        let s = run_static(&net, &b, &ctgs, 3, &limits);
        let d = run_dynamic(&net, &b, &ctgs, 3, &limits);
        assert_eq!(s.results.len(), d.results.len());
        for (a, b) in s.results.iter().zip(&d.results) {
            assert_eq!(a.contingency, b.contingency);
            assert_eq!(a.converged, b.converged);
            assert_eq!(a.violations, b.violations);
        }
        assert_eq!(s.tasks_per_worker.iter().sum::<usize>(), ctgs.len());
        assert_eq!(d.tasks_per_worker.iter().sum::<usize>(), ctgs.len());
    }

    #[test]
    fn dynamic_scheme_distributes_work() {
        let net = ieee118_like();
        let b = base(&net);
        let limits = Limits::default();
        let ctgs: Vec<Contingency> = screen(&net).into_iter().take(40).collect();
        let d = run_dynamic(&net, &b, &ctgs, 4, &limits);
        // Every worker claimed at least one case, none claimed everything.
        assert!(d.tasks_per_worker.iter().all(|&t| t > 0), "{:?}", d.tasks_per_worker);
        assert!(d.tasks_per_worker.iter().all(|&t| t < ctgs.len()));
        assert!(d.imbalance() >= 1.0);
    }

    #[test]
    fn single_worker_processes_everything() {
        let net = ieee14();
        let b = base(&net);
        let ctgs = screen(&net);
        let r = run_static(&net, &b, &ctgs, 1, &Limits::default());
        assert_eq!(r.tasks_per_worker, vec![ctgs.len()]);
        assert!(r.imbalance() - 1.0 < 1e-9);
    }
}

//! Property suite for the contingency crate, over randomized stitched
//! multi-area networks:
//!
//! * the bridge-based islanding filter agrees with an independent
//!   union-find connectivity oracle on every single-branch outage;
//! * warm-started outage solves (rank-1 DC updates and warm-started AC)
//!   agree with their cold counterparts to tolerance.

use proptest::prelude::*;

use pgse_contingency::{
    analyze_one, analyze_one_warm, islanding_outages, ratings, Contingency, DcScreener, Limits,
    ScreenVerdict,
};
use pgse_grid::cases::builder::{build, AreaPlan};
use pgse_grid::Network;
use pgse_powerflow::{solve, solve_dc, PfOptions};

fn arb_plan() -> impl Strategy<Value = AreaPlan> {
    (2usize..5, 3usize..8, 1usize..3, any::<u64>(), 10.0f64..25.0).prop_map(
        |(n_areas, buses, ties, seed, load)| {
            let edges: Vec<(usize, usize)> = (1..n_areas).map(|a| (a - 1, a)).collect();
            AreaPlan {
                name: "ctg-prop".into(),
                bus_counts: vec![buses; n_areas],
                area_edges: edges,
                ties_per_edge: ties,
                seed,
                load_mw: (load, load + 8.0),
                chord_fraction: 0.25,
            }
        },
    )
}

/// Independent connectivity oracle: union-find over all branches except
/// the outaged one.
fn islands_without(net: &Network, skip: usize) -> bool {
    let n = net.n_buses();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (k, br) in net.branches.iter().enumerate() {
        if k == skip {
            continue;
        }
        let (a, b) = (find(&mut parent, br.from), find(&mut parent, br.to));
        if a != b {
            parent[a] = b;
        }
    }
    let root = find(&mut parent, 0);
    (1..n).any(|i| find(&mut parent, i) != root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Tarjan bridge filter names exactly the outages the union-find
    /// oracle says disconnect the network.
    #[test]
    fn islanding_filter_matches_union_find_oracle(plan in arb_plan()) {
        let net = build(&plan);
        let flagged = islanding_outages(&net);
        for k in 0..net.n_branches() {
            let oracle = islands_without(&net, k);
            let bridged = flagged.binary_search(&k).is_ok();
            prop_assert_eq!(
                bridged, oracle,
                "branch {} ({}-{}): bridge filter {} vs oracle {}",
                k, net.branches[k].from, net.branches[k].to, bridged, oracle
            );
        }
    }

    /// Rank-1-updated post-outage DC angles equal a cold DC solve of the
    /// branch-removed network, for every survivable outage.
    #[test]
    fn warm_dc_screen_matches_cold_outage_solve(plan in arb_plan()) {
        let net = build(&plan);
        let scr = DcScreener::new(&net, &Limits::default()).unwrap();
        for k in 0..net.n_branches() {
            let Some(warm_va) = scr.post_outage_angles(k) else {
                prop_assert!(
                    islands_without(&net, k),
                    "branch {k}: screener refused a survivable outage"
                );
                continue;
            };
            prop_assert!(matches!(scr.screen_outage(k), ScreenVerdict::Screened(_)));
            let mut reduced = net.clone();
            reduced.branches.remove(k);
            let cold = solve_dc(&reduced).unwrap();
            for (i, (&w, &c)) in warm_va.iter().zip(&cold.va).enumerate() {
                prop_assert!(
                    (w - c).abs() < 1e-8,
                    "branch {k}, bus {i}: warm {w} vs cold {c}"
                );
            }
        }
    }

    /// Warm-started AC outage solves land on the same operating point as
    /// cold ones, case by case, in no more iterations.
    #[test]
    fn warm_ac_outage_solves_match_cold(plan in arb_plan()) {
        let net = build(&plan);
        let Ok(base) = solve(&net, &PfOptions::default()) else {
            // Builder occasionally produces stressed operating points the
            // flat start cannot solve; nothing to compare then.
            return Ok(());
        };
        let limits = Limits::default();
        let rat = ratings(&net, &base, &limits);
        // The full product (cases × branches) is too slow for a property
        // runner; three spread-out survivable outages pin the behaviour.
        let survivable: Vec<usize> = {
            let isl = islanding_outages(&net);
            (0..net.n_branches()).filter(|k| isl.binary_search(k).is_err()).collect()
        };
        for &k in survivable.iter().step_by(survivable.len().div_ceil(3).max(1)) {
            let ctg = Contingency::BranchOutage(k);
            let cold = analyze_one(&net, ctg, &rat, &limits);
            let warm = analyze_one_warm(&net, ctg, &rat, &limits, &base);
            prop_assert_eq!(cold.converged, warm.converged, "branch {}", k);
            if cold.converged {
                prop_assert!(
                    warm.iterations <= cold.iterations,
                    "branch {}: warm took {} > cold {}",
                    k, warm.iterations, cold.iterations
                );
                prop_assert_eq!(
                    cold.violations.len(), warm.violations.len(),
                    "branch {}: {:?} vs {:?}", k, cold.violations, warm.violations
                );
            }
        }
    }
}

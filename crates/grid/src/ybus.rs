//! Bus admittance matrix and branch two-port admittances.
//!
//! Built with the standard π-model conventions (matching MATPOWER): for a
//! branch with series admittance `ys = 1/(r + jx)`, total charging `b`, and
//! complex tap `t = tap·e^{j·shift}` on the from side,
//!
//! ```text
//! Yff = (ys + j·b/2) / |t|²      Yft = −ys / conj(t)
//! Ytf = −ys / t                  Ytt =  ys + j·b/2
//! ```
//!
//! Bus shunts `gs + j·bs` add to the diagonal.

use pgse_sparsela::Cplx;

use crate::model::{Branch, Network};

/// The four two-port admittance entries of one branch.
#[derive(Debug, Clone, Copy)]
pub struct BranchAdmittance {
    /// From-from self admittance.
    pub yff: Cplx,
    /// From-to transfer admittance.
    pub yft: Cplx,
    /// To-from transfer admittance.
    pub ytf: Cplx,
    /// To-to self admittance.
    pub ytt: Cplx,
}

impl BranchAdmittance {
    /// Computes the two-port entries of `branch`.
    pub fn of(branch: &Branch) -> Self {
        let ys = Cplx::new(branch.r, branch.x).recip();
        let half_b = Cplx::new(0.0, branch.b / 2.0);
        let t = Cplx::from_polar(branch.tap, branch.shift);
        let t2 = t.norm_sqr();
        BranchAdmittance {
            yff: (ys + half_b) / t2,
            yft: -(ys / t.conj()),
            ytf: -(ys / t),
            ytt: ys + half_b,
        }
    }
}

/// The complex bus admittance matrix in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Ybus {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<Cplx>,
}

impl Ybus {
    /// Assembles the admittance matrix of `net`.
    pub fn new(net: &Network) -> Self {
        let n = net.n_buses();
        // Triplet accumulation, then row-compress with duplicate summing.
        let mut trips: Vec<(usize, usize, Cplx)> =
            Vec::with_capacity(4 * net.n_branches() + n);
        for br in &net.branches {
            let y = BranchAdmittance::of(br);
            trips.push((br.from, br.from, y.yff));
            trips.push((br.from, br.to, y.yft));
            trips.push((br.to, br.from, y.ytf));
            trips.push((br.to, br.to, y.ytt));
        }
        for (i, bus) in net.buses.iter().enumerate() {
            // Keep every diagonal present even for shunt-free isolated buses.
            trips.push((i, i, Cplx::new(bus.gs, bus.bs)));
        }
        trips.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut vals: Vec<Cplx> = Vec::new();
        row_ptr.push(0usize);
        let mut row = 0usize;
        for (r, c, v) in trips {
            while row < r {
                row_ptr.push(col_idx.len());
                row += 1;
            }
            if let (Some(&last_c), true) = (col_idx.last(), row_ptr[row] < col_idx.len()) {
                if last_c == c {
                    *vals.last_mut().expect("vals tracks col_idx") += v;
                    continue;
                }
            }
            col_idx.push(c);
            vals.push(v);
        }
        while row < n {
            row_ptr.push(col_idx.len());
            row += 1;
        }
        Ybus { n, row_ptr, col_idx, vals }
    }

    /// Matrix dimension (number of buses).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The column indices and admittances of row `i` (bus `i`'s neighbours
    /// including itself).
    pub fn row(&self, i: usize) -> (&[usize], &[Cplx]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Entry `Y[i][j]`, or zero when structurally absent.
    pub fn get(&self, i: usize, j: usize) -> Cplx {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => Cplx::ZERO,
        }
    }

    /// Complex bus injections `S = V ∘ conj(Y·V)` for the voltage phasor
    /// vector `v`.
    pub fn injections(&self, v: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(v.len(), self.n, "injections: voltage length");
        (0..self.n)
            .map(|i| {
                let (cols, vals) = self.row(i);
                let mut iy = Cplx::ZERO;
                for (c, y) in cols.iter().zip(vals) {
                    iy += *y * v[*c];
                }
                v[i] * iy.conj()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Bus, BusKind, Network};

    fn tiny_net() -> Network {
        let mut buses = vec![Bus::load(1, 0, 0.0, 0.0), Bus::load(2, 0, 0.4, 0.1)];
        buses[0].kind = BusKind::Slack;
        Network {
            name: "tiny".into(),
            base_mva: 100.0,
            buses,
            branches: vec![Branch::line(0, 1, 0.02, 0.1, 0.04)],
        }
    }

    #[test]
    fn line_two_port_is_symmetric() {
        let y = BranchAdmittance::of(&Branch::line(0, 1, 0.02, 0.1, 0.04));
        assert!((y.yft - y.ytf).abs() < 1e-15);
        assert!((y.yff - y.ytt).abs() < 1e-15);
        // yff = ys + jb/2
        let ys = Cplx::new(0.02, 0.1).recip();
        assert!((y.yff - (ys + Cplx::new(0.0, 0.02))).abs() < 1e-15);
    }

    #[test]
    fn transformer_tap_scales_entries() {
        let tr = Branch::transformer(0, 1, 0.0, 0.2, 0.95);
        let y = BranchAdmittance::of(&tr);
        let ys = Cplx::new(0.0, 0.2).recip();
        assert!((y.yff - ys / (0.95 * 0.95)).abs() < 1e-12);
        assert!((y.yft - -(ys / 0.95)).abs() < 1e-12);
        assert!((y.ytt - ys).abs() < 1e-12);
    }

    #[test]
    fn ybus_row_sums_equal_shunt_terms() {
        // With zero charging and zero shunts, each Ybus row sums to zero.
        let mut net = tiny_net();
        net.branches[0].b = 0.0;
        let y = Ybus::new(&net);
        for i in 0..2 {
            let (_, vals) = y.row(i);
            let sum = vals.iter().fold(Cplx::ZERO, |acc, v| acc + *v);
            assert!(sum.abs() < 1e-14, "row {i} sum {sum}");
        }
    }

    #[test]
    fn ybus_is_symmetric_for_lines() {
        let net = tiny_net();
        let y = Ybus::new(&net);
        assert!((y.get(0, 1) - y.get(1, 0)).abs() < 1e-15);
    }

    #[test]
    fn injections_balance_on_lossless_transfer() {
        // Pure reactance: P flows conserve, so P injections sum to zero.
        let mut net = tiny_net();
        net.branches[0].r = 0.0;
        net.branches[0].b = 0.0;
        let y = Ybus::new(&net);
        let v = vec![Cplx::from_polar(1.0, 0.0), Cplx::from_polar(0.98, -0.05)];
        let s = y.injections(&v);
        assert!((s[0].re + s[1].re).abs() < 1e-12);
    }

    #[test]
    fn bus_shunt_appears_on_diagonal() {
        let mut net = tiny_net();
        net.buses[1].bs = 0.19;
        let with = Ybus::new(&net);
        net.buses[1].bs = 0.0;
        let without = Ybus::new(&net);
        let d = with.get(1, 1) - without.get(1, 1);
        assert!((d - Cplx::new(0.0, 0.19)).abs() < 1e-15);
    }

    #[test]
    fn every_diagonal_is_stored() {
        let net = tiny_net();
        let y = Ybus::new(&net);
        for i in 0..net.n_buses() {
            let (cols, _) = y.row(i);
            assert!(cols.contains(&i));
        }
    }
}

//! The power-network data model.
//!
//! Quantities are in the per-unit system on the network's MVA base, except
//! where a constructor explicitly takes megawatts (converted on ingest).
//! Buses are indexed densely `0..n`; the paper's *subsystems* are modelled
//! as bus areas, and branches whose endpoints lie in different areas are the
//! *tie lines* of the decomposition.

use serde::{Deserialize, Serialize};

/// Role of a bus in the power-flow problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusKind {
    /// Reference bus: fixed voltage magnitude and angle.
    Slack,
    /// Generator bus: fixed active injection and voltage magnitude.
    Pv,
    /// Load bus: fixed active and reactive injection.
    Pq,
}

/// A network bus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bus {
    /// External identifier (e.g. the IEEE case bus number).
    pub id: usize,
    /// Power-flow role.
    pub kind: BusKind,
    /// Active load demand (p.u.).
    pub pd: f64,
    /// Reactive load demand (p.u.).
    pub qd: f64,
    /// Active generation (p.u.); meaningful for `Slack`/`Pv` buses.
    pub pg: f64,
    /// Reactive generation (p.u.); solved by the power flow.
    pub qg: f64,
    /// Shunt conductance (p.u.).
    pub gs: f64,
    /// Shunt susceptance (p.u.).
    pub bs: f64,
    /// Voltage magnitude setpoint (p.u.); applies to `Slack`/`Pv` buses.
    pub vm_setpoint: f64,
    /// Area (subsystem) this bus belongs to, `0..n_areas`.
    pub area: usize,
}

impl Bus {
    /// A PQ load bus with the given per-unit demand.
    pub fn load(id: usize, area: usize, pd: f64, qd: f64) -> Self {
        Bus {
            id,
            kind: BusKind::Pq,
            pd,
            qd,
            pg: 0.0,
            qg: 0.0,
            gs: 0.0,
            bs: 0.0,
            vm_setpoint: 1.0,
            area,
        }
    }

    /// Net scheduled active injection `pg − pd` (p.u.).
    pub fn p_injection(&self) -> f64 {
        self.pg - self.pd
    }

    /// Net scheduled reactive injection `qg − qd` (p.u.).
    pub fn q_injection(&self) -> f64 {
        self.qg - self.qd
    }
}

/// A transmission branch (line or transformer) in the π model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Branch {
    /// From-bus index (dense, `0..n`).
    pub from: usize,
    /// To-bus index (dense, `0..n`).
    pub to: usize,
    /// Series resistance (p.u.).
    pub r: f64,
    /// Series reactance (p.u.).
    pub x: f64,
    /// Total line charging susceptance (p.u.).
    pub b: f64,
    /// Off-nominal tap ratio at the from side; `1.0` for lines.
    pub tap: f64,
    /// Phase-shift angle (radians); `0.0` for lines.
    pub shift: f64,
}

impl Branch {
    /// A plain transmission line.
    pub fn line(from: usize, to: usize, r: f64, x: f64, b: f64) -> Self {
        Branch { from, to, r, x, b, tap: 1.0, shift: 0.0 }
    }

    /// A transformer with off-nominal tap ratio.
    pub fn transformer(from: usize, to: usize, r: f64, x: f64, tap: f64) -> Self {
        Branch { from, to, r, x, b: 0.0, tap, shift: 0.0 }
    }
}

/// A complete power network (one interconnection).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    /// Human-readable case name.
    pub name: String,
    /// System MVA base.
    pub base_mva: f64,
    /// Buses, densely indexed.
    pub buses: Vec<Bus>,
    /// Branches between dense bus indices.
    pub branches: Vec<Branch>,
}

impl Network {
    /// Number of buses.
    pub fn n_buses(&self) -> usize {
        self.buses.len()
    }

    /// Number of branches.
    pub fn n_branches(&self) -> usize {
        self.branches.len()
    }

    /// Number of distinct areas (subsystems); areas are `0..n_areas`.
    pub fn n_areas(&self) -> usize {
        self.buses.iter().map(|b| b.area + 1).max().unwrap_or(0)
    }

    /// The dense index of the slack bus.
    ///
    /// # Panics
    /// Panics if the network has no slack bus (invalid case).
    pub fn slack(&self) -> usize {
        self.buses
            .iter()
            .position(|b| b.kind == BusKind::Slack)
            .expect("network has no slack bus")
    }

    /// Bus indices belonging to `area`, in ascending order.
    pub fn area_buses(&self, area: usize) -> Vec<usize> {
        (0..self.n_buses()).filter(|&i| self.buses[i].area == area).collect()
    }

    /// Branch indices whose endpoints lie in different areas — the *tie
    /// lines* of the decomposition.
    pub fn tie_lines(&self) -> Vec<usize> {
        (0..self.n_branches())
            .filter(|&k| {
                let br = &self.branches[k];
                self.buses[br.from].area != self.buses[br.to].area
            })
            .collect()
    }

    /// Branch indices fully inside `area`.
    pub fn internal_branches(&self, area: usize) -> Vec<usize> {
        (0..self.n_branches())
            .filter(|&k| {
                let br = &self.branches[k];
                self.buses[br.from].area == area && self.buses[br.to].area == area
            })
            .collect()
    }

    /// Boundary buses of `area`: buses in the area that terminate at least
    /// one tie line.
    pub fn boundary_buses(&self, area: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .tie_lines()
            .into_iter()
            .flat_map(|k| {
                let br = &self.branches[k];
                [br.from, br.to]
            })
            .filter(|&i| self.buses[i].area == area)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Pairs of areas connected by at least one tie line, each pair listed
    /// once with the smaller area first — the edges of the paper's
    /// decomposition graph (Fig. 3).
    pub fn area_adjacency(&self) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = self
            .tie_lines()
            .into_iter()
            .map(|k| {
                let br = &self.branches[k];
                let (a, b) = (self.buses[br.from].area, self.buses[br.to].area);
                (a.min(b), a.max(b))
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Validates structural sanity: branch endpoints in range, positive
    /// reactances, at least one slack, connected bus graph.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_buses();
        if n == 0 {
            return Err("network has no buses".into());
        }
        if !self.buses.iter().any(|b| b.kind == BusKind::Slack) {
            return Err("network has no slack bus".into());
        }
        for (k, br) in self.branches.iter().enumerate() {
            if br.from >= n || br.to >= n {
                return Err(format!("branch {k} endpoint out of range"));
            }
            if br.from == br.to {
                return Err(format!("branch {k} is a self-loop"));
            }
            if br.x <= 0.0 {
                return Err(format!("branch {k} has non-positive reactance"));
            }
            if br.tap <= 0.0 {
                return Err(format!("branch {k} has non-positive tap"));
            }
        }
        if !self.is_connected() {
            return Err("bus graph is not connected".into());
        }
        Ok(())
    }

    /// Whether the bus graph is connected (ignoring areas).
    pub fn is_connected(&self) -> bool {
        let n = self.n_buses();
        if n == 0 {
            return true;
        }
        let mut adj = vec![Vec::new(); n];
        for br in &self.branches {
            adj[br.from].push(br.to);
            adj[br.to].push(br.from);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Extracts `area` as a standalone network (internal branches only;
    /// tie lines drop out). Returns the sub-network together with the map
    /// from local bus index to the original dense index.
    ///
    /// If the area contains no slack bus, its first bus is promoted to
    /// slack so the sub-network remains structurally valid; this does not
    /// change any electrical quantity.
    pub fn extract_area(&self, area: usize) -> (Network, Vec<usize>) {
        let globals = self.area_buses(area);
        let mut local_of = vec![usize::MAX; self.n_buses()];
        for (l, &g) in globals.iter().enumerate() {
            local_of[g] = l;
        }
        let mut buses: Vec<Bus> = globals.iter().map(|&g| self.buses[g].clone()).collect();
        for (l, b) in buses.iter_mut().enumerate() {
            b.area = 0;
            b.id = self.buses[globals[l]].id;
        }
        if !buses.iter().any(|b| b.kind == BusKind::Slack) {
            if let Some(first) = buses.first_mut() {
                first.kind = BusKind::Slack;
            }
        }
        let branches = self
            .branches
            .iter()
            .filter(|br| {
                self.buses[br.from].area == area && self.buses[br.to].area == area
            })
            .map(|br| Branch {
                from: local_of[br.from],
                to: local_of[br.to],
                ..br.clone()
            })
            .collect();
        (
            Network {
                name: format!("{}-area{}", self.name, area),
                base_mva: self.base_mva,
                buses,
                branches,
            },
            globals,
        )
    }

    /// Serializes the case to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("network serializes")
    }

    /// Parses a case from JSON.
    pub fn from_json(s: &str) -> Result<Network, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_area_net() -> Network {
        let mut buses = vec![
            Bus::load(1, 0, 0.0, 0.0),
            Bus::load(2, 0, 0.5, 0.1),
            Bus::load(3, 1, 0.4, 0.1),
            Bus::load(4, 1, 0.3, 0.05),
        ];
        buses[0].kind = BusKind::Slack;
        buses[0].vm_setpoint = 1.02;
        Network {
            name: "two-area".into(),
            base_mva: 100.0,
            buses,
            branches: vec![
                Branch::line(0, 1, 0.01, 0.05, 0.0),
                Branch::line(2, 3, 0.01, 0.05, 0.0),
                Branch::line(1, 2, 0.02, 0.08, 0.0), // tie line
            ],
        }
    }

    #[test]
    fn tie_lines_cross_areas() {
        let net = two_area_net();
        assert_eq!(net.tie_lines(), vec![2]);
        assert_eq!(net.internal_branches(0), vec![0]);
        assert_eq!(net.internal_branches(1), vec![1]);
    }

    #[test]
    fn boundary_buses_are_tie_endpoints() {
        let net = two_area_net();
        assert_eq!(net.boundary_buses(0), vec![1]);
        assert_eq!(net.boundary_buses(1), vec![2]);
    }

    #[test]
    fn area_adjacency_lists_each_pair_once() {
        let net = two_area_net();
        assert_eq!(net.area_adjacency(), vec![(0, 1)]);
        assert_eq!(net.n_areas(), 2);
    }

    #[test]
    fn validation_accepts_good_network() {
        assert!(two_area_net().validate().is_ok());
    }

    #[test]
    fn validation_rejects_missing_slack() {
        let mut net = two_area_net();
        net.buses[0].kind = BusKind::Pq;
        assert!(net.validate().unwrap_err().contains("slack"));
    }

    #[test]
    fn validation_rejects_disconnection() {
        let mut net = two_area_net();
        net.branches.remove(2);
        assert!(net.validate().unwrap_err().contains("connected"));
    }

    #[test]
    fn validation_rejects_bad_reactance() {
        let mut net = two_area_net();
        net.branches[0].x = 0.0;
        assert!(net.validate().unwrap_err().contains("reactance"));
    }

    #[test]
    fn json_roundtrip_preserves_case() {
        let net = two_area_net();
        let back = Network::from_json(&net.to_json()).unwrap();
        assert_eq!(back.n_buses(), net.n_buses());
        assert_eq!(back.n_branches(), net.n_branches());
        assert_eq!(back.buses[1].pd, net.buses[1].pd);
        assert_eq!(back.name, net.name);
    }

    #[test]
    fn extract_area_relabels_buses_and_branches() {
        let net = two_area_net();
        let (sub, map) = net.extract_area(1);
        assert_eq!(sub.n_buses(), 2);
        assert_eq!(map, vec![2, 3]);
        assert_eq!(sub.n_branches(), 1);
        assert_eq!((sub.branches[0].from, sub.branches[0].to), (0, 1));
        // The tie line (1,2) must not appear in the sub-network.
        assert_eq!(sub.branches.len(), 1);
        // A slack is promoted since area 1 had none.
        assert_eq!(sub.slack(), 0);
        assert_eq!(sub.buses[0].id, 3);
    }

    #[test]
    fn extract_area_preserves_slack_when_present() {
        let net = two_area_net();
        let (sub, _) = net.extract_area(0);
        assert_eq!(sub.slack(), 0);
        assert_eq!(sub.buses[1].pd, 0.5);
    }

    #[test]
    fn injections_subtract_demand() {
        let mut b = Bus::load(1, 0, 0.7, 0.2);
        b.pg = 1.0;
        b.qg = 0.5;
        assert!((b.p_injection() - 0.3).abs() < 1e-15);
        assert!((b.q_injection() - 0.3).abs() < 1e-15);
    }
}

//! IEEE Common Data Format (CDF) import/export.
//!
//! The original IEEE 118-bus test case the paper uses is distributed as a
//! CDF text file (the University of Washington power systems test case
//! archive the paper cites). This module writes any [`Network`] as CDF and
//! reads CDF back, so our cases interoperate with the classic tooling —
//! and so a user with the licensed original file can drop it in directly.
//!
//! The dialect implemented is the fixed-column subset every archive case
//! uses: the title card, `BUS DATA FOLLOWS` … `-999`, and
//! `BRANCH DATA FOLLOWS` … `-999` sections. Fields we do not model
//! (loss zones, MVA limits, …) are written as zeros and ignored on read.

use crate::model::{Branch, Bus, BusKind, Network};

/// CDF parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdfError {
    /// A required section marker is missing.
    MissingSection(&'static str),
    /// A data card could not be parsed.
    BadCard { line: usize, reason: String },
    /// A branch references an unknown bus number.
    UnknownBus { line: usize, bus: usize },
}

impl std::fmt::Display for CdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdfError::MissingSection(s) => write!(f, "missing CDF section: {s}"),
            CdfError::BadCard { line, reason } => write!(f, "bad card at line {line}: {reason}"),
            CdfError::UnknownBus { line, bus } => {
                write!(f, "branch at line {line} references unknown bus {bus}")
            }
        }
    }
}

impl std::error::Error for CdfError {}

/// Serializes `net` to CDF text.
pub fn to_cdf(net: &Network) -> String {
    let mut out = String::new();
    // Title card: date, originator, MVA base, year, season, case id.
    out.push_str(&format!(
        " 01/01/26 PGSE                 {:6.1} 2026 W {}\n",
        net.base_mva, net.name
    ));
    out.push_str(&format!("BUS DATA FOLLOWS {:>28} ITEMS\n", net.n_buses()));
    for bus in &net.buses {
        let kind = match bus.kind {
            BusKind::Pq => 0,
            BusKind::Pv => 2,
            BusKind::Slack => 3,
        };
        // Columns (space separated within our writer; the reader is
        // whitespace-tolerant): number, name, area, zone, type, V, angle,
        // load MW, load MVAr, gen MW, gen MVAr, base kV, desired V,
        // Qmax, Qmin, shunt G, shunt B, remote bus.
        out.push_str(&format!(
            "{:>4} BUS{:<5} {:>3} {:>3} {:>2} {:>7.4} {:>7.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>7.4} {:>8.2} {:>8.2} {:>8.4} {:>8.4} {:>4}\n",
            bus.id,
            bus.id,
            bus.area + 1,
            1,
            kind,
            bus.vm_setpoint,
            0.0,
            bus.pd * net.base_mva,
            bus.qd * net.base_mva,
            bus.pg * net.base_mva,
            bus.qg * net.base_mva,
            138.0,
            bus.vm_setpoint,
            0.0,
            0.0,
            bus.gs,
            bus.bs,
            0
        ));
    }
    out.push_str("-999\n");
    out.push_str(&format!("BRANCH DATA FOLLOWS {:>25} ITEMS\n", net.n_branches()));
    for br in &net.branches {
        let (tap, kind) = if br.tap == 1.0 && br.shift == 0.0 {
            (0.0, 0)
        } else {
            (br.tap, 1)
        };
        // Columns: from, to, area, zone, circuit, type, r, x, b, ratings…,
        // control bus, side, tap ratio, phase shift.
        out.push_str(&format!(
            "{:>4} {:>4} {:>3} {:>3} {:>2} {:>2} {:>10.6} {:>10.6} {:>10.6} {:>5} {:>5} {:>5} {:>4} {:>2} {:>7.4} {:>7.2}\n",
            net.buses[br.from].id,
            net.buses[br.to].id,
            net.buses[br.from].area + 1,
            1,
            1,
            kind,
            br.r,
            br.x,
            br.b,
            0,
            0,
            0,
            0,
            0,
            tap,
            br.shift.to_degrees()
        ));
    }
    out.push_str("-999\nEND OF DATA\n");
    out
}

/// Parses CDF text into a [`Network`].
///
/// # Errors
/// [`CdfError`] on malformed input.
pub fn from_cdf(text: &str) -> Result<Network, CdfError> {
    let mut lines = text.lines().enumerate();
    // Title card: pick up the MVA base (field 3 by whitespace).
    let (_, title) = lines.next().ok_or(CdfError::MissingSection("title card"))?;
    let base_mva: f64 = title
        .split_whitespace()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    let name = title.split_whitespace().skip(5).collect::<Vec<_>>().join(" ");

    // Bus section.
    let mut buses: Vec<Bus> = Vec::new();
    let mut id_to_idx = std::collections::HashMap::new();
    let mut in_bus = false;
    let mut in_branch = false;
    let mut branches: Vec<Branch> = Vec::new();
    let mut saw_bus_section = false;
    let mut saw_branch_section = false;
    for (lineno, raw) in lines {
        let line = raw.trim_end();
        if line.starts_with("BUS DATA FOLLOWS") {
            in_bus = true;
            saw_bus_section = true;
            continue;
        }
        if line.starts_with("BRANCH DATA FOLLOWS") {
            in_branch = true;
            saw_branch_section = true;
            continue;
        }
        if line.trim_start().starts_with("-999") {
            in_bus = false;
            in_branch = false;
            continue;
        }
        if line.starts_with("END OF DATA") {
            break;
        }
        if in_bus {
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() < 13 {
                return Err(CdfError::BadCard {
                    line: lineno + 1,
                    reason: format!("bus card has {} fields", f.len()),
                });
            }
            let parse = |s: &str, what: &str| -> Result<f64, CdfError> {
                s.parse().map_err(|_| CdfError::BadCard {
                    line: lineno + 1,
                    reason: format!("bad {what}: {s}"),
                })
            };
            let id = parse(f[0], "bus number")? as usize;
            let area = (parse(f[2], "area")? as usize).saturating_sub(1);
            let kind = match parse(f[4], "type")? as i64 {
                3 => BusKind::Slack,
                2 | 1 => BusKind::Pv,
                _ => BusKind::Pq,
            };
            let vm_setpoint = parse(f[5], "voltage")?;
            let pd = parse(f[7], "load MW")? / base_mva;
            let qd = parse(f[8], "load MVAr")? / base_mva;
            let pg = parse(f[9], "gen MW")? / base_mva;
            let qg = parse(f[10], "gen MVAr")? / base_mva;
            let gs = parse(f[15], "shunt G").unwrap_or(0.0);
            let bs = parse(f[16], "shunt B").unwrap_or(0.0);
            id_to_idx.insert(id, buses.len());
            buses.push(Bus { id, kind, pd, qd, pg, qg, gs, bs, vm_setpoint, area });
        } else if in_branch {
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() < 9 {
                return Err(CdfError::BadCard {
                    line: lineno + 1,
                    reason: format!("branch card has {} fields", f.len()),
                });
            }
            let parse = |s: &str, what: &str| -> Result<f64, CdfError> {
                s.parse().map_err(|_| CdfError::BadCard {
                    line: lineno + 1,
                    reason: format!("bad {what}: {s}"),
                })
            };
            let from_id = parse(f[0], "from bus")? as usize;
            let to_id = parse(f[1], "to bus")? as usize;
            let from = *id_to_idx
                .get(&from_id)
                .ok_or(CdfError::UnknownBus { line: lineno + 1, bus: from_id })?;
            let to = *id_to_idx
                .get(&to_id)
                .ok_or(CdfError::UnknownBus { line: lineno + 1, bus: to_id })?;
            let r = parse(f[6], "resistance")?;
            let x = parse(f[7], "reactance")?;
            let b = parse(f[8], "charging")?;
            let tap = f.get(14).and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.0);
            let shift =
                f.get(15).and_then(|s| s.parse::<f64>().ok()).unwrap_or(0.0).to_radians();
            branches.push(Branch {
                from,
                to,
                r,
                x,
                b,
                tap: if tap == 0.0 { 1.0 } else { tap },
                shift,
            });
        }
    }
    if !saw_bus_section {
        return Err(CdfError::MissingSection("BUS DATA FOLLOWS"));
    }
    if !saw_branch_section {
        return Err(CdfError::MissingSection("BRANCH DATA FOLLOWS"));
    }
    Ok(Network {
        name: if name.is_empty() { "cdf-import".into() } else { name },
        base_mva,
        buses,
        branches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{ieee118_like, ieee14};

    #[test]
    fn ieee14_roundtrips_through_cdf() {
        let net = ieee14();
        let text = to_cdf(&net);
        let back = from_cdf(&text).unwrap();
        assert_eq!(back.n_buses(), 14);
        assert_eq!(back.n_branches(), 20);
        assert_eq!(back.base_mva, 100.0);
        for (a, b) in net.buses.iter().zip(&back.buses) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.kind, b.kind);
            assert!((a.pd - b.pd).abs() < 1e-4, "bus {} pd", a.id);
            assert!((a.vm_setpoint - b.vm_setpoint).abs() < 1e-4);
        }
        for (a, b) in net.branches.iter().zip(&back.branches) {
            assert_eq!((a.from, a.to), (b.from, b.to));
            assert!((a.r - b.r).abs() < 1e-6);
            assert!((a.x - b.x).abs() < 1e-6);
            assert!((a.tap - b.tap).abs() < 1e-4);
        }
    }

    #[test]
    fn roundtrip_preserves_power_flow_solution() {
        let net = ieee14();
        let back = from_cdf(&to_cdf(&net)).unwrap();
        let a = pgse_powerflow_check(&net);
        let b = pgse_powerflow_check(&back);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    /// Cheap stand-in for a full PF (grid must not depend on powerflow):
    /// the Ybus diagonal magnitudes capture the electrical identity.
    fn pgse_powerflow_check(net: &Network) -> Vec<f64> {
        let y = crate::ybus::Ybus::new(net);
        (0..net.n_buses()).map(|i| y.get(i, i).abs()).collect()
    }

    #[test]
    fn areas_survive_the_roundtrip() {
        let net = ieee118_like();
        let back = from_cdf(&to_cdf(&net)).unwrap();
        assert_eq!(back.n_areas(), 9);
        for a in 0..9 {
            assert_eq!(back.area_buses(a).len(), net.area_buses(a).len(), "area {a}");
        }
        assert_eq!(back.tie_lines().len(), net.tie_lines().len());
    }

    #[test]
    fn missing_sections_are_reported() {
        assert_eq!(
            from_cdf("title only\n").unwrap_err(),
            CdfError::MissingSection("BUS DATA FOLLOWS")
        );
        let no_branch = " t PGSE 100.0 2026 W x\nBUS DATA FOLLOWS 1 ITEMS\n-999\nEND OF DATA\n";
        assert_eq!(
            from_cdf(no_branch).unwrap_err(),
            CdfError::MissingSection("BRANCH DATA FOLLOWS")
        );
    }

    #[test]
    fn bad_cards_are_reported_with_line_numbers() {
        let text = " t PGSE 100.0 2026 W x\nBUS DATA FOLLOWS 1 ITEMS\ngarbage card\n-999\n";
        match from_cdf(text) {
            Err(CdfError::BadCard { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected BadCard, got {other:?}"),
        }
    }

    #[test]
    fn unknown_branch_bus_is_reported() {
        let net = ieee14();
        let mut text = to_cdf(&net);
        // Corrupt the first branch card's from-bus to 999.
        text = text.replacen("   1    2", " 999    2", 1);
        assert!(matches!(from_cdf(&text), Err(CdfError::UnknownBus { bus: 999, .. })));
    }
}

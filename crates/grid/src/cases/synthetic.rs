//! Scalable synthetic multi-area grids.
//!
//! The paper's ongoing work targets the WECC system with 37 balancing
//! authorities; this generator produces decompositions of any size so the
//! scaling benches can sweep the subsystem count well beyond IEEE-118.
//! The area graph is a random spanning tree plus extra edges, which keeps
//! it connected with a tunable density.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::builder::{build, AreaPlan};
use crate::model::Network;

/// Parameters of a synthetic multi-area grid.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of areas (subsystems / balancing authorities).
    pub n_areas: usize,
    /// Inclusive range of buses per area.
    pub buses_per_area: (usize, usize),
    /// Extra area-graph edges beyond the spanning tree.
    pub extra_edges: usize,
    /// Tie lines per area-graph edge.
    pub ties_per_edge: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            n_areas: 37, // the WECC balancing-authority count
            buses_per_area: (10, 30),
            extra_edges: 18,
            ties_per_edge: 2,
            seed: 37,
        }
    }
}

/// Builds a synthetic grid from `spec`.
///
/// # Panics
/// Panics if `spec.n_areas == 0` or the bus range is below 3.
pub fn synthetic_grid(spec: &SyntheticSpec) -> Network {
    assert!(spec.n_areas > 0, "need at least one area");
    assert!(spec.buses_per_area.0 >= 3, "areas need at least 3 buses");
    assert!(spec.buses_per_area.0 <= spec.buses_per_area.1, "bad bus range");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let bus_counts: Vec<usize> = (0..spec.n_areas)
        .map(|_| rng.gen_range(spec.buses_per_area.0..=spec.buses_per_area.1))
        .collect();

    // Random spanning tree: attach each area to a random earlier one.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for a in 1..spec.n_areas {
        let parent = rng.gen_range(0..a);
        edges.push((parent, a));
    }
    // Extra edges for mesh-like decomposition graphs.
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < spec.extra_edges && spec.n_areas > 2 && guard < 50 * spec.extra_edges.max(1) {
        guard += 1;
        let u = rng.gen_range(0..spec.n_areas);
        let v = rng.gen_range(0..spec.n_areas);
        let e = (u.min(v), u.max(v));
        if u == v || edges.contains(&e) {
            continue;
        }
        edges.push(e);
        added += 1;
    }

    build(&AreaPlan {
        name: format!("synthetic-{}areas", spec.n_areas),
        bus_counts,
        area_edges: edges,
        ties_per_edge: spec.ties_per_edge,
        seed: spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        load_mw: (15.0, 45.0),
        chord_fraction: 0.25,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_builds_wecc_scale() {
        let net = synthetic_grid(&SyntheticSpec::default());
        assert_eq!(net.n_areas(), 37);
        assert!(net.n_buses() >= 370);
        net.validate().unwrap();
    }

    #[test]
    fn decomposition_graph_is_connected() {
        let net = synthetic_grid(&SyntheticSpec { n_areas: 12, ..Default::default() });
        // Union-find over area edges.
        let mut parent: Vec<usize> = (0..12).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for (a, b) in net.area_adjacency() {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        assert!((0..12).all(|a| find(&mut parent, a) == root));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SyntheticSpec { n_areas: 5, seed: 7, ..Default::default() };
        assert_eq!(
            synthetic_grid(&spec).to_json(),
            synthetic_grid(&spec).to_json()
        );
    }

    #[test]
    fn small_instances_work() {
        let net = synthetic_grid(&SyntheticSpec {
            n_areas: 2,
            buses_per_area: (4, 6),
            extra_edges: 0,
            ties_per_edge: 1,
            seed: 1,
        });
        net.validate().unwrap();
        assert_eq!(net.n_areas(), 2);
    }
}

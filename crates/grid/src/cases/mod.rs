//! Test cases.
//!
//! * [`ieee14()`] — the true IEEE 14-bus test system, embedded verbatim; the
//!   validation anchor for power flow and WLS estimation.
//! * [`ieee118`] — an IEEE-118-like system whose 9-subsystem decomposition
//!   reproduces the paper's Table I / Fig. 3 exactly (bus counts
//!   14,13,13,13,13,12,14,13,13 and the 12 tie-line edges).
//! * [`synthetic`] — a scalable multi-area generator for WECC-sized runs
//!   (the paper's ongoing work targets 37 balancing authorities).

pub mod builder;
pub mod ieee118;
pub mod ieee14;
pub mod synthetic;

pub use ieee118::ieee118_like;
pub use ieee14::ieee14;
pub use synthetic::{synthetic_grid, SyntheticSpec};

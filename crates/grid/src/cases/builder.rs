//! Deterministic multi-area network construction.
//!
//! Both the IEEE-118-like case and the scalable synthetic cases are produced
//! by the same builder: each area gets a meshed internal topology (ring plus
//! chords — transmission-like average degree), every area receives
//! generation roughly covering its load, and area pairs named in the plan
//! are joined by tie lines. Construction is fully deterministic in the
//! plan's seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{Branch, Bus, BusKind, Network};

/// A recipe for a multi-area network.
#[derive(Debug, Clone)]
pub struct AreaPlan {
    /// Case name.
    pub name: String,
    /// Number of buses in each area (the paper's subsystem sizes).
    pub bus_counts: Vec<usize>,
    /// Area pairs joined by tie lines (the decomposition-graph edges).
    pub area_edges: Vec<(usize, usize)>,
    /// Tie lines per area edge.
    pub ties_per_edge: usize,
    /// RNG seed; equal plans build identical networks.
    pub seed: u64,
    /// Per-bus active load range in MW.
    pub load_mw: (f64, f64),
    /// Extra internal chords per area, as a fraction of the area's bus count.
    pub chord_fraction: f64,
}

/// Builds the network described by `plan`.
///
/// # Panics
/// Panics if the plan is degenerate (an empty area, an edge referencing a
/// missing area, or an area with fewer than 3 buses, which cannot form a
/// ring).
pub fn build(plan: &AreaPlan) -> Network {
    let n_areas = plan.bus_counts.len();
    assert!(n_areas > 0, "plan has no areas");
    for &(a, b) in &plan.area_edges {
        assert!(a < n_areas && b < n_areas && a != b, "bad area edge ({a},{b})");
    }
    for (a, &k) in plan.bus_counts.iter().enumerate() {
        assert!(k >= 3, "area {a} has {k} buses; need at least 3");
    }
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let base_mva = 100.0;

    // Dense bus indexing: area a occupies a contiguous block.
    let mut offsets = Vec::with_capacity(n_areas + 1);
    offsets.push(0usize);
    for &k in &plan.bus_counts {
        offsets.push(offsets.last().unwrap() + k);
    }
    let n = *offsets.last().unwrap();

    // Buses with loads; generators assigned afterwards.
    let mut buses: Vec<Bus> = Vec::with_capacity(n);
    for (a, (&base, &count)) in offsets.iter().zip(&plan.bus_counts).enumerate() {
        for local in 0..count {
            let idx = base + local;
            let pd_mw = rng.gen_range(plan.load_mw.0..plan.load_mw.1);
            // Power factor ≈ 0.95 lagging.
            let qd_mw = pd_mw * 0.33;
            buses.push(Bus::load(idx + 1, a, pd_mw / base_mva, qd_mw / base_mva));
        }
    }

    // Generation: two PV units per area at the first and the middle bus,
    // dispatched to ~102% of the area's load so each area roughly covers
    // its own losses; the slack only balances the small residual. This is
    // what keeps tie-line flows modest at any interconnection size (a
    // deficit per area would all drain through the slack's region and
    // collapse large systems). The global slack is bus 0 of area 0.
    for a in 0..n_areas {
        let area_load: f64 = (offsets[a]..offsets[a + 1]).map(|i| buses[i].pd).sum();
        let gen_buses = [offsets[a], offsets[a] + plan.bus_counts[a] / 2];
        let per_gen = 1.02 * area_load / gen_buses.len() as f64;
        for &g in &gen_buses {
            buses[g].kind = BusKind::Pv;
            buses[g].pg = per_gen;
            buses[g].vm_setpoint = rng.gen_range(1.01..1.05);
        }
    }
    buses[0].kind = BusKind::Slack;
    buses[0].vm_setpoint = 1.04;

    let mut branches: Vec<Branch> = Vec::new();
    let line = |rng: &mut StdRng, f: usize, t: usize, long: bool| {
        let x = if long { rng.gen_range(0.08..0.22) } else { rng.gen_range(0.05..0.15) };
        Branch::line(f, t, x / 4.0, x, rng.gen_range(0.01..0.04))
    };

    // Internal topology: ring + hub spokes + chords. The spokes tie every
    // fourth bus back to the area's generator bus, which keeps the
    // electrical diameter of large areas small — without them a 30-bus
    // ring drops too much voltage along its circumference and the power
    // flow of big interconnections collapses.
    for (&base, &k) in offsets.iter().zip(&plan.bus_counts) {
        for local in 0..k {
            let f = base + local;
            let t = base + (local + 1) % k;
            branches.push(line(&mut rng, f, t, false));
        }
        for local in (2..k.saturating_sub(1)).step_by(4) {
            branches.push(line(&mut rng, base, base + local, false));
        }
        let chords = ((k as f64) * plan.chord_fraction).floor() as usize;
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < chords && guard < 100 * chords.max(1) {
            guard += 1;
            let u = base + rng.gen_range(0..k);
            let v = base + rng.gen_range(0..k);
            // Skip self-loops, ring edges, and duplicate chords.
            let adjacent_on_ring = u.abs_diff(v) == 1 || u.abs_diff(v) == k - 1;
            if u == v || adjacent_on_ring {
                continue;
            }
            if branches.iter().any(|b| {
                (b.from == u && b.to == v) || (b.from == v && b.to == u)
            }) {
                continue;
            }
            branches.push(line(&mut rng, u.min(v), u.max(v), false));
            added += 1;
        }
    }

    // Tie lines between the planned area pairs. Endpoints rotate through
    // each area's buses so multiple ties create multiple boundary buses.
    for &(a, b) in &plan.area_edges {
        for tie in 0..plan.ties_per_edge {
            let fa = offsets[a] + (rng.gen_range(0..plan.bus_counts[a]) + tie) % plan.bus_counts[a];
            let fb = offsets[b] + (rng.gen_range(0..plan.bus_counts[b]) + tie) % plan.bus_counts[b];
            branches.push(line(&mut rng, fa, fb, true));
        }
    }

    let net = Network { name: plan.name.clone(), base_mva, buses, branches };
    debug_assert!(net.validate().is_ok(), "builder produced invalid network");
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> AreaPlan {
        AreaPlan {
            name: "small".into(),
            bus_counts: vec![5, 4, 6],
            area_edges: vec![(0, 1), (1, 2)],
            ties_per_edge: 2,
            seed: 99,
            load_mw: (15.0, 40.0),
            chord_fraction: 0.3,
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = build(&small_plan());
        let b = build(&small_plan());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn areas_have_requested_sizes() {
        let net = build(&small_plan());
        assert_eq!(net.area_buses(0).len(), 5);
        assert_eq!(net.area_buses(1).len(), 4);
        assert_eq!(net.area_buses(2).len(), 6);
    }

    #[test]
    fn planned_edges_appear_in_adjacency() {
        let net = build(&small_plan());
        assert_eq!(net.area_adjacency(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn network_is_valid_and_connected() {
        build(&small_plan()).validate().unwrap();
    }

    #[test]
    fn each_area_has_generation() {
        let net = build(&small_plan());
        for a in 0..3 {
            let gen: f64 = net
                .area_buses(a)
                .into_iter()
                .map(|i| net.buses[i].pg)
                .sum();
            assert!(gen > 0.0, "area {a} has no generation");
        }
        assert_eq!(net.slack(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = small_plan();
        let a = build(&p);
        p.seed = 100;
        let b = build(&p);
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_areas_are_rejected() {
        let mut p = small_plan();
        p.bus_counts = vec![2, 4];
        p.area_edges = vec![(0, 1)];
        build(&p);
    }
}

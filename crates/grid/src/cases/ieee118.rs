//! The IEEE-118-like case matching the paper's decomposition.
//!
//! The paper decomposes the IEEE 118-bus system into 9 subsystems and
//! publishes the resulting decomposition graph (Fig. 3 / Table I):
//!
//! * subsystem bus counts `14, 13, 13, 13, 13, 12, 14, 13, 13` (118 total);
//! * 12 tie-line edges `(1,2) (1,4) (1,5) (2,3) (2,6) (3,6) (4,5) (4,7)
//!   (5,6) (5,7) (5,8) (7,9)` (1-indexed), with edge weight equal to the sum
//!   of the two subsystems' bus counts.
//!
//! We reconstruct a network with *exactly* that decomposition topology and
//! realistic electrical parameters; the operating point comes from our own
//! Newton power flow, so generated telemetry is self-consistent. See
//! DESIGN.md §2 for why this substitution preserves every experiment.

use super::builder::{build, AreaPlan};
use crate::model::Network;

/// Bus count of each of the 9 subsystems (paper Table I, vertex weights).
pub const SUBSYSTEM_BUS_COUNTS: [usize; 9] = [14, 13, 13, 13, 13, 12, 14, 13, 13];

/// Decomposition-graph edges (paper Table I / Fig. 3), zero-indexed.
pub const SUBSYSTEM_EDGES: [(usize, usize); 12] = [
    (0, 1),
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 5),
    (2, 5),
    (3, 4),
    (3, 6),
    (4, 5),
    (4, 6),
    (4, 7),
    (6, 8),
];

/// Builds the IEEE-118-like network with the paper's 9-subsystem
/// decomposition.
pub fn ieee118_like() -> Network {
    build(&AreaPlan {
        name: "ieee118-like".into(),
        bus_counts: SUBSYSTEM_BUS_COUNTS.to_vec(),
        area_edges: SUBSYSTEM_EDGES.to_vec(),
        ties_per_edge: 2,
        seed: 118,
        load_mw: (15.0, 45.0),
        chord_fraction: 0.25,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_118_buses_in_9_subsystems() {
        let net = ieee118_like();
        assert_eq!(net.n_buses(), 118);
        assert_eq!(net.n_areas(), 9);
        for (a, &k) in SUBSYSTEM_BUS_COUNTS.iter().enumerate() {
            assert_eq!(net.area_buses(a).len(), k, "area {a}");
        }
    }

    #[test]
    fn decomposition_graph_matches_table1() {
        let net = ieee118_like();
        let mut expected: Vec<(usize, usize)> = SUBSYSTEM_EDGES.to_vec();
        expected.sort_unstable();
        assert_eq!(net.area_adjacency(), expected);
    }

    #[test]
    fn edge_weights_match_table1() {
        // Table I: We(s1,s2) = Nb(s1) + Nb(s2); e.g. (1,2) → 27, (2,6) → 25.
        let w = |a: usize, b: usize| SUBSYSTEM_BUS_COUNTS[a] + SUBSYSTEM_BUS_COUNTS[b];
        assert_eq!(w(0, 1), 27);
        assert_eq!(w(1, 5), 25);
        assert_eq!(w(2, 5), 25);
        assert_eq!(w(4, 5), 25);
        assert_eq!(w(1, 2), 26);
        assert_eq!(w(4, 7), 26);
        assert_eq!(w(6, 8), 27);
    }

    #[test]
    fn case_is_valid() {
        ieee118_like().validate().unwrap();
    }

    #[test]
    fn every_subsystem_has_boundary_buses() {
        let net = ieee118_like();
        for a in 0..9 {
            assert!(!net.boundary_buses(a).is_empty(), "area {a}");
        }
    }

    #[test]
    fn construction_is_reproducible() {
        assert_eq!(ieee118_like().to_json(), ieee118_like().to_json());
    }
}

//! The IEEE 14-bus test system.
//!
//! Standard data (MATPOWER `case14` / University of Washington PSTCA
//! archive), embedded verbatim on a 100 MVA base. The paper uses a 14-bus
//! subsystem for its empirical iteration model (`g1 = 3.7579`,
//! `g2 = 5.2464`); we use this case both for that experiment and as the
//! correctness anchor of the whole estimation stack.

use crate::model::{Branch, Bus, BusKind, Network};

/// Builds the IEEE 14-bus network (all buses in area 0).
pub fn ieee14() -> Network {
    // (id, kind, Pd MW, Qd MVAr, Gs MW, Bs MVAr, Vm setpoint, Pg MW)
    // The tuple shape mirrors the source data table column-for-column.
    #[allow(clippy::type_complexity)]
    #[rustfmt::skip]
    let bus_rows: [(usize, BusKind, f64, f64, f64, f64, f64, f64); 14] = [
        ( 1, BusKind::Slack,  0.0,  0.0, 0.0,  0.0, 1.060, 232.4),
        ( 2, BusKind::Pv,    21.7, 12.7, 0.0,  0.0, 1.045,  40.0),
        ( 3, BusKind::Pv,    94.2, 19.0, 0.0,  0.0, 1.010,   0.0),
        ( 4, BusKind::Pq,    47.8, -3.9, 0.0,  0.0, 1.000,   0.0),
        ( 5, BusKind::Pq,     7.6,  1.6, 0.0,  0.0, 1.000,   0.0),
        ( 6, BusKind::Pv,    11.2,  7.5, 0.0,  0.0, 1.070,   0.0),
        ( 7, BusKind::Pq,     0.0,  0.0, 0.0,  0.0, 1.000,   0.0),
        ( 8, BusKind::Pv,     0.0,  0.0, 0.0,  0.0, 1.090,   0.0),
        ( 9, BusKind::Pq,    29.5, 16.6, 0.0, 19.0, 1.000,   0.0),
        (10, BusKind::Pq,     9.0,  5.8, 0.0,  0.0, 1.000,   0.0),
        (11, BusKind::Pq,     3.5,  1.8, 0.0,  0.0, 1.000,   0.0),
        (12, BusKind::Pq,     6.1,  1.6, 0.0,  0.0, 1.000,   0.0),
        (13, BusKind::Pq,    13.5,  5.8, 0.0,  0.0, 1.000,   0.0),
        (14, BusKind::Pq,    14.9,  5.0, 0.0,  0.0, 1.000,   0.0),
    ];
    let base = 100.0;
    let buses = bus_rows
        .iter()
        .map(|&(id, kind, pd, qd, gs, bs, vm, pg)| Bus {
            id,
            kind,
            pd: pd / base,
            qd: qd / base,
            pg: pg / base,
            qg: 0.0,
            gs: gs / base,
            bs: bs / base,
            vm_setpoint: vm,
            area: 0,
        })
        .collect();

    // (from id, to id, r, x, b, tap). tap = 0 denotes a plain line.
    #[rustfmt::skip]
    let branch_rows: [(usize, usize, f64, f64, f64, f64); 20] = [
        ( 1,  2, 0.01938, 0.05917, 0.0528, 0.0),
        ( 1,  5, 0.05403, 0.22304, 0.0492, 0.0),
        ( 2,  3, 0.04699, 0.19797, 0.0438, 0.0),
        ( 2,  4, 0.05811, 0.17632, 0.0340, 0.0),
        ( 2,  5, 0.05695, 0.17388, 0.0346, 0.0),
        ( 3,  4, 0.06701, 0.17103, 0.0128, 0.0),
        ( 4,  5, 0.01335, 0.04211, 0.0,    0.0),
        ( 4,  7, 0.0,     0.20912, 0.0,    0.978),
        ( 4,  9, 0.0,     0.55618, 0.0,    0.969),
        ( 5,  6, 0.0,     0.25202, 0.0,    0.932),
        ( 6, 11, 0.09498, 0.19890, 0.0,    0.0),
        ( 6, 12, 0.12291, 0.25581, 0.0,    0.0),
        ( 6, 13, 0.06615, 0.13027, 0.0,    0.0),
        ( 7,  8, 0.0,     0.17615, 0.0,    0.0),
        ( 7,  9, 0.0,     0.11001, 0.0,    0.0),
        ( 9, 10, 0.03181, 0.08450, 0.0,    0.0),
        ( 9, 14, 0.12711, 0.27038, 0.0,    0.0),
        (10, 11, 0.08205, 0.19207, 0.0,    0.0),
        (12, 13, 0.22092, 0.19988, 0.0,    0.0),
        (13, 14, 0.17093, 0.34802, 0.0,    0.0),
    ];
    let branches = branch_rows
        .iter()
        .map(|&(f, t, r, x, b, tap)| Branch {
            from: f - 1,
            to: t - 1,
            r,
            x,
            b,
            tap: if tap == 0.0 { 1.0 } else { tap },
            shift: 0.0,
        })
        .collect();

    Network { name: "ieee14".into(), base_mva: base, buses, branches }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_is_structurally_valid() {
        let net = ieee14();
        net.validate().unwrap();
        assert_eq!(net.n_buses(), 14);
        assert_eq!(net.n_branches(), 20);
    }

    #[test]
    fn generation_roughly_covers_load() {
        let net = ieee14();
        let load: f64 = net.buses.iter().map(|b| b.pd).sum();
        let gen: f64 = net.buses.iter().map(|b| b.pg).sum();
        // 259 MW load, 272.4 MW dispatched (losses covered by the slack).
        assert!((load - 2.59).abs() < 1e-9);
        assert!((gen - 2.724).abs() < 1e-9);
    }

    #[test]
    fn transformers_have_taps() {
        let net = ieee14();
        let taps: Vec<f64> = net
            .branches
            .iter()
            .filter(|b| b.tap != 1.0)
            .map(|b| b.tap)
            .collect();
        assert_eq!(taps, vec![0.978, 0.969, 0.932]);
    }

    #[test]
    fn bus9_carries_the_shunt() {
        let net = ieee14();
        assert!((net.buses[8].bs - 0.19).abs() < 1e-12);
    }

    #[test]
    fn single_area_case() {
        let net = ieee14();
        assert_eq!(net.n_areas(), 1);
        assert!(net.tie_lines().is_empty());
    }
}

//! # pgse-grid
//!
//! Power-network model and test cases for the distributed state-estimation
//! prototype.
//!
//! Provides:
//! * the network data model ([`Network`], [`Bus`], [`Branch`]) with areas —
//!   the paper's *subsystems* — and tie-line identification;
//! * the complex bus admittance matrix ([`ybus::Ybus`]) and per-branch
//!   two-port admittances used by power flow and the measurement model;
//! * test cases: the true IEEE 14-bus system ([`cases::ieee14()`]), an
//!   IEEE-118-like system whose 9-subsystem decomposition matches the
//!   paper's Table I exactly ([`cases::ieee118`]), and a scalable synthetic
//!   multi-area generator ([`cases::synthetic`]) for WECC-sized studies;
//! * JSON (de)serialization of cases for the experiment harness, and IEEE
//!   Common Data Format import/export ([`cdf`]) for interoperability with
//!   the classic test-case archive the paper cites.

pub mod cases;
pub mod cdf;
pub mod model;
pub mod ybus;

pub use model::{Branch, Bus, BusKind, Network};
pub use ybus::{BranchAdmittance, Ybus};

//! Property tests on network construction and the admittance model.

use proptest::prelude::*;

use pgse_grid::cases::builder::{build, AreaPlan};
use pgse_grid::{Network, Ybus};
use pgse_sparsela::Cplx;

fn arb_plan() -> impl Strategy<Value = AreaPlan> {
    (
        2usize..6,
        3usize..9,
        1usize..3,
        any::<u64>(),
        15.0f64..40.0,
    )
        .prop_map(|(n_areas, buses, ties, seed, load)| {
            let edges: Vec<(usize, usize)> = (1..n_areas).map(|a| (a - 1, a)).collect();
            AreaPlan {
                name: "prop".into(),
                bus_counts: vec![buses; n_areas],
                area_edges: edges,
                ties_per_edge: ties,
                seed,
                load_mw: (load, load + 10.0),
                chord_fraction: 0.3,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn built_networks_are_always_valid(plan in arb_plan()) {
        let net = build(&plan);
        prop_assert!(net.validate().is_ok(), "{:?}", net.validate());
        prop_assert_eq!(net.n_areas(), plan.bus_counts.len());
        for (a, &k) in plan.bus_counts.iter().enumerate() {
            prop_assert_eq!(net.area_buses(a).len(), k);
        }
    }

    #[test]
    fn tie_lines_connect_exactly_the_planned_pairs(plan in arb_plan()) {
        let net = build(&plan);
        let mut expected: Vec<(usize, usize)> = plan.area_edges.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(net.area_adjacency(), expected);
        // Tie count: ties_per_edge per planned pair.
        prop_assert_eq!(
            net.tie_lines().len(),
            plan.area_edges.len() * plan.ties_per_edge
        );
    }

    #[test]
    fn ybus_rows_sum_to_shunt_terms(plan in arb_plan()) {
        // With the π model, Σ_j Y[i][j] = shunt(i) + Σ_{branches at i} j·b/2
        // (+ tap corrections); for our tap-free builder lines this reduces
        // to the bus shunt plus the charging halves.
        let net = build(&plan);
        let y = Ybus::new(&net);
        for i in 0..net.n_buses() {
            let (_, vals) = y.row(i);
            let sum = vals.iter().fold(Cplx::ZERO, |acc, v| acc + *v);
            let mut expect = Cplx::new(net.buses[i].gs, net.buses[i].bs);
            for br in &net.branches {
                if br.from == i || br.to == i {
                    expect += Cplx::new(0.0, br.b / 2.0);
                }
            }
            prop_assert!((sum - expect).abs() < 1e-10, "bus {i}: {sum} vs {expect}");
        }
    }

    #[test]
    fn json_roundtrip_is_lossless(plan in arb_plan()) {
        let net = build(&plan);
        let back = Network::from_json(&net.to_json()).unwrap();
        prop_assert_eq!(net.to_json(), back.to_json());
    }

    #[test]
    fn extract_area_covers_all_buses_once(plan in arb_plan()) {
        let net = build(&plan);
        let mut seen = vec![false; net.n_buses()];
        for a in 0..net.n_areas() {
            let (sub, map) = net.extract_area(a);
            prop_assert_eq!(sub.n_buses(), map.len());
            for &g in &map {
                prop_assert!(!seen[g]);
                seen[g] = true;
            }
            // Sub-network branches are exactly the internal ones.
            prop_assert_eq!(sub.n_branches(), net.internal_branches(a).len());
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn boundary_buses_touch_tie_lines(plan in arb_plan()) {
        let net = build(&plan);
        for a in 0..net.n_areas() {
            for &b in &net.boundary_buses(a) {
                let touches = net.tie_lines().iter().any(|&k| {
                    let br = &net.branches[k];
                    br.from == b || br.to == b
                });
                prop_assert!(touches, "area {a} bus {b}");
            }
        }
    }
}

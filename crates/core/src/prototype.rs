//! The running system prototype.

use std::time::{Duration, Instant};

use pgse_cluster::{plan_redistribution, ClusterFleet, HpcCluster, InterfaceLayer};
use pgse_dse::decomposition::{decompose, Decomposition};
use pgse_dse::estimator::{AreaEstimator, AreaSolution};
use pgse_dse::pseudo::{from_wire, to_wire, PseudoMeasurement};
use pgse_dse::runner::aggregate;
use pgse_estimation::measurement::MeasurementSet;
use pgse_estimation::wls::WlsError;
use pgse_grid::Network;
use pgse_medici::{
    EndpointProtocol, EndpointRegistry, FaultKind, FaultProxy, FaultProxyHandle, FaultStats,
    MifPipeline, MwClient, PipelineHandle, SeComponent,
};
use pgse_partition::weights::{step1_graph, step2_graph, SubsystemProfile};
use pgse_partition::{partition_kway, repartition, Partition};
use pgse_powerflow::{PfError, PfOptions, PfSolution};

use crate::config::{CoordinationMode, PrototypeConfig};
use crate::report::FrameReport;

/// How long a fault-injected round lingers after its collection ends to
/// absorb straggler deliveries (late duplicates / delayed frames), keeping
/// them out of the next round's inboxes.
const STRAGGLER_GRACE: Duration = Duration::from_millis(60);

/// Prototype construction/run failures.
#[derive(Debug)]
pub enum PrototypeError {
    /// The ground-truth power flow failed.
    PowerFlow(PfError),
    /// A state estimator failed.
    Wls(WlsError),
    /// Middleware deployment failed.
    Middleware(pgse_medici::MwError),
}

impl std::fmt::Display for PrototypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrototypeError::PowerFlow(e) => write!(f, "power flow: {e}"),
            PrototypeError::Wls(e) => write!(f, "state estimation: {e}"),
            PrototypeError::Middleware(e) => write!(f, "middleware: {e}"),
        }
    }
}

impl std::error::Error for PrototypeError {}

/// The deployed prototype: estimators + clusters + middleware + mapping.
pub struct SystemPrototype {
    config: PrototypeConfig,
    net: Network,
    pf: PfSolution,
    decomp: Decomposition,
    estimators: Vec<AreaEstimator>,
    fleet: ClusterFleet,
    registry: EndpointRegistry,
    /// Per-area inbox (index = area id); `None` while an exchange borrows
    /// it.
    inboxes: Vec<InterfaceLayer>,
    /// Coordinator inbox (hierarchical mode only).
    coordinator: Option<InterfaceLayer>,
    /// All middleware pipelines (kept alive for the prototype's lifetime).
    pipelines: Vec<PipelineHandle>,
    /// Fault-injection proxies fronting the pipelines (chaos runs only).
    proxies: Vec<FaultProxyHandle>,
    profiles: Vec<SubsystemProfile>,
    prev_assignment: Option<Partition>,
    frame: u64,
    /// Frame-scope recorder: the main-thread pipeline (frame spans,
    /// middleware sends, telemetry generation).
    obs_frame: pgse_obs::Recorder,
    /// One recorder per area, installed on whichever fleet/collector
    /// thread works that area — keeps the trace deterministic regardless
    /// of thread scheduling.
    obs_areas: Vec<pgse_obs::Recorder>,
    /// Recorder for the coordinator's inbox (hierarchical mode only).
    obs_coordinator: pgse_obs::Recorder,
}

impl SystemPrototype {
    /// Deploys the prototype on `net`.
    ///
    /// Solves the ground-truth power flow, runs the preliminary DSE step,
    /// builds one estimator per subsystem, brings up the cluster fleet and
    /// the middleware pipelines for the configured coordination mode.
    ///
    /// # Errors
    /// [`PrototypeError`] when the power flow or middleware deployment
    /// fails.
    pub fn deploy(net: Network, config: PrototypeConfig) -> Result<Self, PrototypeError> {
        let pf = pgse_powerflow::solve(&net, &PfOptions::default())
            .map_err(PrototypeError::PowerFlow)?;
        let decomp = decompose(&net, &config.decomposition);
        let estimators: Vec<AreaEstimator> = decomp
            .areas
            .iter()
            .map(|a| AreaEstimator::new(a.clone(), &net, &pf, config.wls))
            .collect();
        let fleet = if config.n_clusters == 3 {
            ClusterFleet::paper_testbed()
        } else {
            ClusterFleet::new(
                (0..config.n_clusters)
                    .map(|i| HpcCluster::new(format!("cluster-{i}"), 2))
                    .collect(),
            )
        };

        let registry = EndpointRegistry::new();
        let inboxes: Vec<InterfaceLayer> = (0..decomp.n_areas())
            .map(|a| {
                InterfaceLayer::deploy_with(
                    &registry,
                    &format!("tcp://area-{a}.dse.pnl.gov:5000"),
                    config.middleware,
                )
            })
            .collect::<Result<_, _>>()
            .map_err(PrototypeError::Middleware)?;

        let mut pipelines = Vec::new();
        let mut proxies = Vec::new();
        let mut coordinator = None;
        match config.mode {
            CoordinationMode::Decentralized => {
                // One one-way pipeline per *directed* decomposition edge
                // (the paper's exchange is bidirectional, §IV-A). Under a
                // chaos spec, every edge's public endpoint is either dead
                // or a fault proxy in front of the real (renamed) pipeline.
                for &(a, b) in &decomp.edges {
                    for (src, dst) in [(a, b), (b, a)] {
                        let public = format!("tcp://pipe-{src}-{dst}.dse.pnl.gov:6789");
                        let inbox = format!("tcp://area-{dst}.dse.pnl.gov:5000");
                        match &config.chaos {
                            Some(spec) if spec.is_dead(src, dst) => {
                                FaultProxy::deploy_dead(&registry, &public)
                                    .map_err(PrototypeError::Middleware)?;
                            }
                            Some(spec) => {
                                let raw = format!("tcp://raw-{src}-{dst}.dse.pnl.gov:6790");
                                pipelines.push(
                                    build_pipeline(&registry, &raw, &inbox, config.relay_rate)
                                        .map_err(PrototypeError::Middleware)?,
                                );
                                proxies.push(
                                    FaultProxy::deploy(
                                        &registry,
                                        &public,
                                        &raw,
                                        spec.fault_plan(),
                                    )
                                    .map_err(PrototypeError::Middleware)?,
                                );
                            }
                            None => pipelines.push(
                                build_pipeline(&registry, &public, &inbox, config.relay_rate)
                                    .map_err(PrototypeError::Middleware)?,
                            ),
                        }
                    }
                }
            }
            CoordinationMode::Hierarchical => {
                // Star topology through the coordinator.
                coordinator = Some(
                    InterfaceLayer::deploy_with(
                        &registry,
                        "tcp://coordinator.dse.pnl.gov:5000",
                        config.middleware,
                    )
                    .map_err(PrototypeError::Middleware)?,
                );
                for a in 0..decomp.n_areas() {
                    pipelines.push(
                        build_pipeline(
                            &registry,
                            &format!("tcp://up-{a}.dse.pnl.gov:6789"),
                            "tcp://coordinator.dse.pnl.gov:5000",
                            config.relay_rate,
                        )
                        .map_err(PrototypeError::Middleware)?,
                    );
                    pipelines.push(
                        build_pipeline(
                            &registry,
                            &format!("tcp://down-{a}.dse.pnl.gov:6789"),
                            &format!("tcp://area-{a}.dse.pnl.gov:5000"),
                            config.relay_rate,
                        )
                        .map_err(PrototypeError::Middleware)?,
                    );
                }
            }
        }

        let profiles: Vec<SubsystemProfile> = decomp
            .areas
            .iter()
            .map(|a| SubsystemProfile {
                n_buses: a.subnet.n_buses(),
                gs: a.gs(),
                g1: config.g1,
                g2: config.g2,
            })
            .collect();

        let obs_areas =
            (0..decomp.n_areas()).map(|a| pgse_obs::Recorder::new(&format!("area{a}"))).collect();
        Ok(SystemPrototype {
            config,
            net,
            pf,
            decomp,
            estimators,
            fleet,
            registry,
            inboxes,
            coordinator,
            pipelines,
            proxies,
            profiles,
            prev_assignment: None,
            frame: 0,
            obs_frame: pgse_obs::Recorder::new("frame"),
            obs_areas,
            obs_coordinator: pgse_obs::Recorder::new("coordinator"),
        })
    }

    /// The interconnection.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The ground-truth operating point.
    pub fn truth(&self) -> &PfSolution {
        &self.pf
    }

    /// The decomposition.
    pub fn decomposition(&self) -> &Decomposition {
        &self.decomp
    }

    /// The per-subsystem weight-model profiles.
    pub fn profiles(&self) -> &[SubsystemProfile] {
        &self.profiles
    }

    /// Total middleware frames relayed so far.
    pub fn relayed_frames(&self) -> u64 {
        self.pipelines.iter().map(|p| p.stats().frames).sum()
    }

    /// Per-proxy fault statistics (empty unless a chaos spec is deployed),
    /// in the deterministic edge-deployment order.
    pub fn fault_stats(&self) -> Vec<FaultStats> {
        self.proxies.iter().map(|p| p.stats()).collect()
    }

    /// Executes one time frame at `dt_seconds` since the run epoch:
    /// noise estimation → weight update → (re)partition → Step 1 →
    /// middleware exchange → repartition + redistribution → Step 2 →
    /// aggregation.
    ///
    /// # Errors
    /// [`PrototypeError::Wls`] when any estimator fails.
    pub fn run_frame(&mut self, dt_seconds: f64) -> Result<FrameReport, PrototypeError> {
        // Install the frame recorder for the whole main-thread pipeline:
        // everything the frame does on this thread (telemetry generation,
        // middleware sends, stage spans) lands in the `frame` scope.
        let rec = self.obs_frame.clone();
        pgse_obs::with_recorder(&rec, || self.run_frame_inner(dt_seconds))
    }

    fn run_frame_inner(&mut self, dt_seconds: f64) -> Result<FrameReport, PrototypeError> {
        self.frame += 1;
        let mut frame_span = pgse_obs::span_at("frame", self.frame);
        let frame_seed = self.config.noise.seed ^ self.frame.wrapping_mul(0xa076_1d64_78bd_642f);
        let x = self.config.noise.level(dt_seconds);
        let k = self.fleet.len();

        // Mapping for Step 1: balance the predicted computation.
        let g1_graph = step1_graph(&self.profiles, &self.decomp.edges, x);
        let p1 = match &self.prev_assignment {
            None => partition_kway(&g1_graph, k, &self.config.kway),
            Some(prev) => repartition(&g1_graph, prev, &self.config.repartition),
        };

        // Step 1 on the fleet: each cluster estimates its assigned
        // subsystems concurrently.
        let step1_span = pgse_obs::span("frame.step1");
        let sets: Vec<MeasurementSet> = self
            .estimators
            .iter()
            .map(|e| e.generate_telemetry(x, frame_seed))
            .collect();
        let t0 = Instant::now();
        let step1 = self.run_on_fleet("area.step1", &p1, |area| {
            self.estimators[area].step1(&sets[area])
        })?;
        let step1_time = t0.elapsed();
        drop(step1_span);

        // Exchange through the middleware.
        let mut exchange_span = pgse_obs::span("frame.exchange");
        let t1 = Instant::now();
        let relayed_before = self.relayed_frames();
        let pseudo: Vec<Vec<PseudoMeasurement>> = self
            .estimators
            .iter()
            .zip(&step1)
            .map(|(e, s)| e.export_pseudo(s))
            .collect();
        let (inboxes, exchanged_bytes, mut faults) = match self.config.mode {
            CoordinationMode::Decentralized => self.exchange_decentralized(&pseudo),
            CoordinationMode::Hierarchical => self.exchange_hierarchical(&pseudo),
        };
        faults.missed.sort_unstable();
        faults.missed.dedup();
        let exchange_time = t1.elapsed();
        let relayed_frames = self.relayed_frames() - relayed_before;
        // Areas whose entire neighbourhood went silent proceed on Step 1
        // alone (graceful degradation).
        let degraded_areas: Vec<usize> = (0..self.decomp.n_areas())
            .filter(|&a| {
                inboxes[a].is_empty() && !self.decomp.areas[a].neighbors.is_empty()
            })
            .collect();
        exchange_span.record("bytes", exchanged_bytes);
        exchange_span.record("missed", faults.missed.len() as u64);
        exchange_span.record("degraded", degraded_areas.len() as u64);
        drop(exchange_span);
        pgse_obs::counter_add("exchange.bytes", exchanged_bytes);
        pgse_obs::counter_add("exchange.missed", faults.missed.len() as u64);
        pgse_obs::counter_add("exchange.degraded", degraded_areas.len() as u64);

        // Mapping for Step 2: minimize communication, keep balance, avoid
        // needless migration; then account the forced data redistribution.
        let g2_graph = step2_graph(&self.profiles, &self.decomp.edges, x);
        let p2 = repartition(&g2_graph, &p1, &self.config.repartition);
        let area_bytes: Vec<u64> = sets.iter().map(|s| s.wire_size() as u64).collect();
        let redistribution =
            plan_redistribution(&p1.assignment, &p2.assignment, &area_bytes);

        // Step 2 on the fleet under the new mapping.
        let step2_span = pgse_obs::span("frame.step2");
        let t2 = Instant::now();
        let step2 = self.run_on_fleet("area.step2", &p2, |area| {
            if degraded_areas.contains(&area) {
                // No neighbour data arrived: keep the Step-1 solution
                // rather than re-estimating against an empty exchange.
                return Ok(step1[area].clone());
            }
            self.estimators[area].step2(
                &step1[area],
                &inboxes[area],
                &sets[area],
                x,
                frame_seed ^ 0xdead_beef,
            )
        })?;
        let step2_time = t2.elapsed();
        drop(step2_span);

        // Final step: aggregate.
        let (vm, va) = aggregate(&self.decomp, &step2);
        let vm_rmse = rmse(&vm, &self.pf.vm);
        let va_rmse = rmse(&va, &self.pf.va);

        let buses_per_cluster = (0..k)
            .map(|c| {
                p1.part(c)
                    .into_iter()
                    .map(|a| self.decomp.areas[a].subnet.n_buses())
                    .sum()
            })
            .collect();

        let report = FrameReport {
            frame: self.frame,
            dt_seconds,
            noise_level: x,
            predicted_iterations: self.config.g1 * x + self.config.g2,
            step1_iterations: step1.iter().map(|s| s.iterations).collect(),
            step1_assignment: p1.assignment.clone(),
            step1_imbalance: p1.imbalance(&g1_graph),
            step2_assignment: p2.assignment.clone(),
            step2_imbalance: p2.imbalance(&g2_graph),
            step2_cut: p2.edge_cut(&g2_graph),
            migrations: redistribution.migrations(),
            redistributed_bytes: redistribution.total_bytes(),
            exchanged_bytes,
            relayed_frames,
            missed_exchanges: faults.missed,
            degraded_areas,
            corrupt_frames: faults.corrupt,
            duplicate_frames: faults.duplicates,
            late_frames: faults.late,
            step1_time,
            exchange_time,
            step2_time,
            vm_rmse,
            va_rmse,
            buses_per_cluster,
        };
        frame_span.record("vm_rmse", report.vm_rmse);
        frame_span.record("healthy", report.exchange_healthy());
        self.prev_assignment = Some(p1);
        Ok(report)
    }

    /// The merged observability report over every scope the prototype
    /// records: the `frame` pipeline, one `area{i}` scope per subsystem,
    /// the `coordinator` (hierarchical mode), and — on chaos runs — a
    /// `faults` scope folding the proxies' injection ground truth into
    /// counters. Call after the proxies settle (see
    /// [`SystemPrototype::fault_stats`]); the deterministic export of the
    /// result is byte-identical across same-seed runs.
    pub fn obs_report(&self) -> pgse_obs::ObsReport {
        let mut scopes = vec![self.obs_frame.snapshot()];
        scopes.extend(self.obs_areas.iter().map(pgse_obs::Recorder::snapshot));
        if self.coordinator.is_some() {
            scopes.push(self.obs_coordinator.snapshot());
        }
        if !self.proxies.is_empty() {
            let rec = pgse_obs::Recorder::new("faults");
            for stats in self.fault_stats() {
                for kind in [
                    FaultKind::Dropped,
                    FaultKind::Truncated,
                    FaultKind::Delayed,
                    FaultKind::Duplicated,
                ] {
                    rec.counter_add(
                        &format!("faults.injected.{}", kind.label()),
                        stats.count_of(kind),
                    );
                }
                rec.counter_add("faults.injected.total", stats.injected_faults());
                // Arrival totals trail the wire — volatile, like the relay
                // counters.
                rec.counter_add("volatile.faults.frames", stats.frames);
            }
            scopes.push(rec.snapshot());
        }
        pgse_obs::ObsReport::from_scopes(scopes)
    }

    /// Runs `job(area)` for every area, grouped by the mapping: each
    /// cluster processes its subsystems on its own pool, all clusters
    /// concurrently. Each area's work runs under that area's recorder
    /// inside a `stage` span stamped with the frame index, so the trace is
    /// identical no matter which cluster thread executed the area.
    fn run_on_fleet<F>(
        &self,
        stage: &'static str,
        mapping: &Partition,
        job: F,
    ) -> Result<Vec<AreaSolution>, PrototypeError>
    where
        F: Fn(usize) -> Result<AreaSolution, WlsError> + Sync,
    {
        let k = self.fleet.len();
        let job = &job;
        let frame = self.frame;
        let per_cluster: Vec<Result<Vec<(usize, AreaSolution)>, WlsError>> = self.fleet.run_all(
            (0..k)
                .map(|c| {
                    let areas = mapping.part(c);
                    let obs = self.obs_areas.clone();
                    Box::new(move || {
                        use rayon::prelude::*;
                        areas
                            .par_iter()
                            .map(|&a| {
                                pgse_obs::with_recorder(&obs[a], || {
                                    let mut sp = pgse_obs::span_at(stage, frame);
                                    let r = job(a);
                                    if let Ok(sol) = &r {
                                        sp.record("iterations", sol.iterations as u64);
                                    }
                                    r.map(|s| (a, s))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                        as Box<dyn FnOnce() -> Result<Vec<(usize, AreaSolution)>, WlsError> + Send>
                })
                .collect(),
        );
        let mut out: Vec<Option<AreaSolution>> = vec![None; self.decomp.n_areas()];
        for cluster_result in per_cluster {
            for (a, sol) in cluster_result.map_err(PrototypeError::Wls)? {
                out[a] = Some(sol);
            }
        }
        Ok(out.into_iter().map(|s| s.expect("every area estimated")).collect())
    }

    /// Peer-to-peer exchange: each area ships its batch down the pipeline
    /// toward every neighbour; each area's interface layer collects one
    /// frame per distinct neighbour within the round deadline. Failed
    /// sends, corrupt frames, duplicates and deadline expiry are tolerated
    /// and accounted — the round always completes.
    fn exchange_decentralized(
        &mut self,
        pseudo: &[Vec<PseudoMeasurement>],
    ) -> (Vec<Vec<PseudoMeasurement>>, u64, ExchangeFaults) {
        let client = MwClient::with_config(self.registry.clone(), self.config.middleware);
        let deadline = self.config.exchange_deadline;
        let chaotic = self.config.chaos.is_some();
        let mut bytes = 0u64;
        let mut faults = ExchangeFaults::default();
        let expected: Vec<usize> =
            self.decomp.areas.iter().map(|a| a.neighbors.len()).collect();
        let obs = self.obs_areas.clone();
        let inbox_frames: Vec<(Vec<Vec<u8>>, pgse_cluster::CollectOutcome, usize)> =
            std::thread::scope(|scope| {
                // Collectors first (they block on their listeners)…
                let collectors: Vec<_> = self
                    .inboxes
                    .iter_mut()
                    .zip(&expected)
                    .zip(&obs)
                    .map(|((layer, &n), rec)| {
                        scope.spawn(move || {
                            pgse_obs::with_recorder(rec, || {
                                let outcome = layer.collect_distinct(n, deadline, &|f| {
                                    from_wire(f)
                                        .ok()
                                        .and_then(|b| b.first().map(|p| p.from_area as u64))
                                });
                                let late = if chaotic {
                                    layer.drain_pending(STRAGGLER_GRACE)
                                } else {
                                    0
                                };
                                (layer.process(|f| f.to_vec()), outcome, late)
                            })
                        })
                    })
                    .collect();
                // …then the sends (the pipeline routers buffer them). A
                // failed send — e.g. a dead pipeline exhausting its retries
                // — is not fatal: the destination's collector accounts the
                // miss.
                for (src, batch) in pseudo.iter().enumerate() {
                    let wire = to_wire(batch);
                    for &dst in &self.decomp.areas[src].neighbors {
                        let url = format!("tcp://pipe-{src}-{dst}.dse.pnl.gov:6789");
                        if client.send(&url, &wire).is_ok() {
                            bytes += wire.len() as u64;
                        }
                    }
                }
                collectors
                    .into_iter()
                    .map(|h| h.join().expect("collector panicked"))
                    .collect()
            });
        let mut inboxes = Vec::with_capacity(inbox_frames.len());
        for (a, (frames, outcome, late)) in inbox_frames.into_iter().enumerate() {
            faults.corrupt += outcome.corrupt as u64;
            faults.duplicates += outcome.duplicate as u64;
            faults.late += late as u64;
            // collect_distinct already vetted these, so they parse. Sort
            // the batches by source area: network arrival order is
            // timing-dependent, and the inbox order feeds Step-2 numerics
            // — canonical order keeps same-seed runs bit-identical.
            let mut parsed: Vec<(usize, Vec<PseudoMeasurement>)> = frames
                .iter()
                .filter_map(|f| {
                    let b = from_wire(f).ok()?;
                    let from = b.first()?.from_area;
                    Some((from, b))
                })
                .collect();
            parsed.sort_by_key(|&(from, _)| from);
            let seen: Vec<usize> = parsed.iter().map(|&(from, _)| from).collect();
            let batches: Vec<PseudoMeasurement> =
                parsed.into_iter().flat_map(|(_, b)| b).collect();
            for &nb in &self.decomp.areas[a].neighbors {
                if !seen.contains(&nb) {
                    faults.missed.push((nb, a));
                }
            }
            inboxes.push(batches);
        }
        (inboxes, bytes, faults)
    }

    /// Hierarchical exchange: everything goes up to the coordinator, which
    /// fans the relevant batches back down — two middleware hops, each
    /// bounded by the round deadline. A missing uplink degrades every
    /// destination that needed it; a missing downlink degrades one area.
    fn exchange_hierarchical(
        &mut self,
        pseudo: &[Vec<PseudoMeasurement>],
    ) -> (Vec<Vec<PseudoMeasurement>>, u64, ExchangeFaults) {
        let client = MwClient::with_config(self.registry.clone(), self.config.middleware);
        let deadline = self.config.exchange_deadline;
        let n_areas = self.decomp.n_areas();
        let mut bytes = 0u64;
        let mut faults = ExchangeFaults::default();

        // Up: every area → coordinator.
        let coordinator = self.coordinator.as_mut().expect("hierarchical mode");
        let coord_rec = self.obs_coordinator.clone();
        let (up_frames, up_outcome) = std::thread::scope(|scope| {
            let collector = scope.spawn(|| {
                pgse_obs::with_recorder(&coord_rec, || {
                    let outcome = coordinator.collect_distinct(n_areas, deadline, &|f| {
                        from_wire(f)
                            .ok()
                            .and_then(|b| b.first().map(|p| p.from_area as u64))
                    });
                    (coordinator.process(|f| f.to_vec()), outcome)
                })
            });
            for (src, batch) in pseudo.iter().enumerate() {
                let wire = to_wire(batch);
                if client.send(&format!("tcp://up-{src}.dse.pnl.gov:6789"), &wire).is_ok() {
                    bytes += wire.len() as u64;
                }
            }
            collector.join().expect("coordinator panicked")
        });
        faults.corrupt += up_outcome.corrupt as u64;
        faults.duplicates += up_outcome.duplicate as u64;
        // The coordinator re-indexes arrivals by source area; an uplink
        // that never arrived is a missed exchange toward every neighbour
        // that needed the data.
        let mut by_area: Vec<Vec<PseudoMeasurement>> = vec![Vec::new(); n_areas];
        for frame in &up_frames {
            if let Ok(batch) = from_wire(frame) {
                if let Some(area) = batch.first().map(|p| p.from_area) {
                    by_area[area] = batch;
                }
            }
        }
        for src in 0..n_areas {
            if by_area[src].is_empty() && !pseudo[src].is_empty() {
                for &dst in &self.decomp.areas[src].neighbors {
                    faults.missed.push((src, dst));
                }
            }
        }

        // Down: coordinator → each area, only its neighbours' data.
        let downlinks: Vec<Vec<u8>> = (0..n_areas)
            .map(|a| {
                let inbox: Vec<PseudoMeasurement> = self.decomp.areas[a]
                    .neighbors
                    .iter()
                    .flat_map(|&nb| by_area[nb].iter().copied())
                    .collect();
                to_wire(&inbox)
            })
            .collect();
        let obs = self.obs_areas.clone();
        let inbox_frames: Vec<(Vec<Vec<u8>>, pgse_cluster::CollectOutcome)> =
            std::thread::scope(|scope| {
                let collectors: Vec<_> = self
                    .inboxes
                    .iter_mut()
                    .zip(&obs)
                    .map(|(layer, rec)| {
                        scope.spawn(move || {
                            pgse_obs::with_recorder(rec, || {
                                let outcome = layer.collect_deadline(1, deadline);
                                (layer.process(|f| f.to_vec()), outcome)
                            })
                        })
                    })
                    .collect();
                for (a, wire) in downlinks.iter().enumerate() {
                    if client.send(&format!("tcp://down-{a}.dse.pnl.gov:6789"), wire).is_ok() {
                        bytes += wire.len() as u64;
                    }
                }
                collectors
                    .into_iter()
                    .map(|h| h.join().expect("collector panicked"))
                    .collect()
            });
        let mut inboxes = Vec::with_capacity(n_areas);
        for (a, (frames, outcome)) in inbox_frames.into_iter().enumerate() {
            faults.corrupt += outcome.corrupt as u64;
            let mut batch: Vec<PseudoMeasurement> = Vec::new();
            for f in &frames {
                match from_wire(f) {
                    Ok(b) => batch.extend(b),
                    Err(_) => faults.corrupt += 1,
                }
            }
            if batch.is_empty() {
                // The whole downlink was lost: every neighbour's data
                // missed this area.
                for &nb in &self.decomp.areas[a].neighbors {
                    faults.missed.push((nb, a));
                }
            }
            inboxes.push(batch);
        }
        (inboxes, bytes, faults)
    }
}

/// What the fault-tolerant exchange accounted while completing a round.
#[derive(Debug, Default)]
struct ExchangeFaults {
    /// Directed `(from, to)` exchanges that never reached `to`.
    missed: Vec<(usize, usize)>,
    /// Frames that arrived corrupt or unparseable.
    corrupt: u64,
    /// Duplicate deliveries discarded during collection.
    duplicates: u64,
    /// Stragglers drained after the round's collection ended.
    late: u64,
}

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    let s: f64 = a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum();
    (s / a.len().max(1) as f64).sqrt()
}

/// Builds and starts one one-way pipeline (Fig. 7).
fn build_pipeline(
    registry: &EndpointRegistry,
    in_url: &str,
    out_url: &str,
    relay_rate: f64,
) -> Result<PipelineHandle, pgse_medici::MwError> {
    let mut pipeline = MifPipeline::new();
    pipeline.add_mif_connector(EndpointProtocol::Tcp);
    let mut se = SeComponent::new(format!("SE[{in_url} -> {out_url}]"));
    se.set_in_name_endp(in_url);
    se.set_out_hal_endp(out_url);
    pipeline.add_mif_component(se);
    pipeline.set_relay_rate(relay_rate);
    pipeline.start(registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChaosSpec;
    use pgse_grid::cases::ieee118_like;

    fn deploy(mode: CoordinationMode) -> SystemPrototype {
        let config = PrototypeConfig { mode, ..Default::default() };
        SystemPrototype::deploy(ieee118_like(), config).unwrap()
    }

    #[test]
    fn decentralized_frame_runs_end_to_end() {
        let mut proto = deploy(CoordinationMode::Decentralized);
        let report = proto.run_frame(0.0).unwrap();
        assert_eq!(report.frame, 1);
        assert_eq!(report.step1_assignment.len(), 9);
        assert!(report.step1_imbalance >= 1.0 && report.step1_imbalance < 1.2);
        assert!(report.vm_rmse < 1e-2, "vm rmse {}", report.vm_rmse);
        assert!(report.va_rmse < 1e-2, "va rmse {}", report.va_rmse);
        assert!(report.exchanged_bytes > 0);
        // Every peer batch traversed the middleware: 24 directed sends
        // (the router's counter may trail delivery by a few frames).
        assert!(report.relayed_frames >= 20 && report.relayed_frames <= 24);
        assert_eq!(report.buses_per_cluster.iter().sum::<usize>(), 118);
        // A healthy run records no faults.
        assert!(report.exchange_healthy());
        assert!(report.missed_exchanges.is_empty());
        assert!(report.degraded_areas.is_empty());
        assert_eq!(report.corrupt_frames, 0);
    }

    #[test]
    fn dead_pipeline_frame_completes_degraded() {
        let config = PrototypeConfig {
            chaos: Some(ChaosSpec { dead: vec![(0, 1)], ..Default::default() }),
            exchange_deadline: Duration::from_millis(800),
            ..Default::default()
        };
        let mut proto = SystemPrototype::deploy(ieee118_like(), config).unwrap();
        let start = Instant::now();
        let report = proto.run_frame(0.0).unwrap();
        // The dead edge cannot hang the frame: the round ends at the
        // deadline and the frame proceeds on what arrived.
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(report.missed_exchanges.contains(&(0, 1)), "{:?}", report.missed_exchanges);
        assert!(!report.exchange_healthy());
        // One lost neighbour barely moves the estimate.
        assert!(report.vm_rmse < 1e-2, "vm rmse {}", report.vm_rmse);
    }

    #[test]
    fn seeded_drops_are_repeatable() {
        let run = |seed: u64| {
            let config = PrototypeConfig {
                chaos: Some(ChaosSpec {
                    seed,
                    drop_prob: 0.4,
                    ..Default::default()
                }),
                exchange_deadline: Duration::from_millis(600),
                ..Default::default()
            };
            let mut proto = SystemPrototype::deploy(ieee118_like(), config).unwrap();
            let report = proto.run_frame(0.0).unwrap();
            report.missed_exchanges
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce the same missed exchanges");
        assert!(!a.is_empty(), "40% drops over 24 edges should lose something");
    }

    #[test]
    fn duplicated_deliveries_never_double_count() {
        let config = PrototypeConfig {
            chaos: Some(ChaosSpec { seed: 7, duplicate_prob: 1.0, ..Default::default() }),
            exchange_deadline: Duration::from_millis(800),
            ..Default::default()
        };
        let mut proto = SystemPrototype::deploy(ieee118_like(), config).unwrap();
        let report = proto.run_frame(0.0).unwrap();
        // Every frame is delivered twice, yet collection counts distinct
        // sources only: the round is complete and healthy, with the extra
        // copies accounted as duplicates or drained stragglers — never as
        // received, missed or corrupt exchanges.
        assert!(report.exchange_healthy(), "missed {:?}", report.missed_exchanges);
        assert!(
            report.duplicate_frames + report.late_frames > 0,
            "duplicated deliveries must surface in the accounting"
        );
        assert_eq!(report.corrupt_frames, 0);
        assert!(report.vm_rmse < 1e-2);
        // The trace agrees with the report's split.
        let obs = proto.obs_report();
        assert_eq!(
            obs.total_counter("exchange.duplicates") + obs.total_counter("exchange.drained"),
            report.duplicate_frames + report.late_frames
        );
        assert_eq!(obs.total_counter("exchange.frames"), 24);
    }

    #[test]
    fn obs_report_covers_every_scope() {
        let mut proto = deploy(CoordinationMode::Decentralized);
        proto.run_frame(0.0).unwrap();
        let obs = proto.obs_report();
        let scopes: Vec<&str> = obs.scopes.iter().map(|s| s.scope.as_str()).collect();
        assert!(scopes.contains(&"frame"));
        for a in 0..9 {
            assert!(scopes.contains(&format!("area{a}").as_str()), "{scopes:?}");
        }
        // Healthy decentralized run: no faults scope, no coordinator.
        assert!(!scopes.contains(&"faults"));
        assert!(!scopes.contains(&"coordinator"));
        assert_eq!(obs.spans_named("frame").len(), 1);
        assert_eq!(obs.spans_named("area.step1").len(), 9);
        assert_eq!(obs.spans_named("area.step2").len(), 9);
        assert_eq!(obs.counter("frame", "mw.send.ok"), 24);
        assert_eq!(obs.counter("frame", "exchange.missed"), 0);
    }

    #[test]
    fn hierarchical_frame_runs_end_to_end() {
        let mut proto = deploy(CoordinationMode::Hierarchical);
        let report = proto.run_frame(0.0).unwrap();
        assert!(report.vm_rmse < 1e-2);
        // 9 uplinks + 9 downlinks through the coordinator (counter may
        // trail delivery slightly).
        assert!(report.relayed_frames >= 14 && report.relayed_frames <= 18);
    }

    #[test]
    fn successive_frames_track_the_noise_process() {
        let mut proto = deploy(CoordinationMode::Decentralized);
        let morning = proto.run_frame(86_400.0 / 4.0).unwrap();
        let evening = proto.run_frame(3.0 * 86_400.0 / 4.0).unwrap();
        assert!(morning.noise_level > evening.noise_level);
        assert!(morning.predicted_iterations > evening.predicted_iterations);
        assert_eq!(evening.frame, 2);
    }

    #[test]
    fn repartitioning_keeps_migration_small() {
        let mut proto = deploy(CoordinationMode::Decentralized);
        let report = proto.run_frame(0.0).unwrap();
        // The paper's example: only a couple of subsystems move between
        // the Step-1 and Step-2 mappings.
        assert!(report.migrations <= 4, "migrations {}", report.migrations);
        if report.migrations > 0 {
            assert!(report.redistributed_bytes > 0);
        }
    }
}

//! Prototype configuration.

use std::time::Duration;

use pgse_dse::DecompositionOptions;
use pgse_estimation::telemetry::NoiseProcess;
use pgse_estimation::wls::WlsOptions;
use pgse_medici::{FaultPlan, MwConfig};
use pgse_partition::kway::KwayOptions;
use pgse_partition::repartition::RepartitionOptions;

/// How state estimators coordinate (paper Fig. 1 supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinationMode {
    /// Peer-to-peer exchange between neighbouring estimators
    /// (decentralized DSE — the paper's focus, after \[5\]).
    Decentralized,
    /// All exchange goes through a central coordinator (hierarchical state
    /// estimation — today's industry structure).
    Hierarchical,
}

/// Deterministic fault injection for the middleware exchange.
///
/// When set on a [`PrototypeConfig`], every decentralized peer-to-peer
/// pipeline is fronted by a [`pgse_medici::FaultProxy`] seeded from `seed`
/// and the edge's public URL, so the same spec reproduces the same fault
/// sequence run after run. Edges listed in `dead` are deployed as dead
/// pipelines: the endpoint exists but never accepts a connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Master seed of the fault streams (combined per edge).
    pub seed: u64,
    /// Probability a relayed frame is silently discarded.
    pub drop_prob: f64,
    /// Probability a frame is truncated mid-body.
    pub truncate_prob: f64,
    /// Probability a frame is delayed by [`ChaosSpec::delay`].
    pub delay_prob: f64,
    /// Injected delay for delayed frames.
    pub delay: Duration,
    /// Probability a frame is delivered twice.
    pub duplicate_prob: f64,
    /// Directed edges `(src, dst)` whose pipeline is dead: connect attempts
    /// are refused, so the sender's retries exhaust and the receiver runs
    /// degraded.
    pub dead: Vec<(usize, usize)>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0,
            drop_prob: 0.0,
            truncate_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(25),
            duplicate_prob: 0.0,
            dead: Vec::new(),
        }
    }
}

impl ChaosSpec {
    /// The per-proxy fault plan this spec describes (the per-edge seed is
    /// mixed in by the proxy itself from the edge's public URL).
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            drop_prob: self.drop_prob,
            truncate_prob: self.truncate_prob,
            delay_prob: self.delay_prob,
            delay: self.delay,
            duplicate_prob: self.duplicate_prob,
        }
    }

    /// Whether the directed edge `(src, dst)` is configured dead.
    pub fn is_dead(&self, src: usize, dst: usize) -> bool {
        self.dead.contains(&(src, dst))
    }
}

/// Configuration of a [`crate::SystemPrototype`].
#[derive(Debug, Clone)]
pub struct PrototypeConfig {
    /// Number of HPC clusters; `3` reproduces the paper's testbed.
    pub n_clusters: usize,
    /// Coordination structure.
    pub mode: CoordinationMode,
    /// The time-frame noise process `x = f(δt)`.
    pub noise: NoiseProcess,
    /// WLS solver settings for every estimator.
    pub wls: WlsOptions,
    /// Preliminary-step settings.
    pub decomposition: DecompositionOptions,
    /// Multilevel partitioner settings (before Step 1).
    pub kway: KwayOptions,
    /// Adaptive repartitioner settings (before Step 2).
    pub repartition: RepartitionOptions,
    /// Iteration-model slope `g1` (paper §IV-B.2; 14-bus empirical value).
    pub g1: f64,
    /// Iteration-model intercept `g2`.
    pub g2: f64,
    /// Middleware relay rate in bytes/second (paper measured ≈ 0.4 GB/s).
    pub relay_rate: f64,
    /// Deadlines and retry schedule for every middleware client the
    /// prototype deploys (interface layers and the exchange sender).
    pub middleware: MwConfig,
    /// Wall-clock budget of one exchange round: each interface layer stops
    /// waiting for neighbour pseudo measurements once this expires and the
    /// frame proceeds degraded on whatever arrived.
    pub exchange_deadline: Duration,
    /// Optional deterministic fault injection on the exchange pipelines.
    pub chaos: Option<ChaosSpec>,
}

impl Default for PrototypeConfig {
    fn default() -> Self {
        PrototypeConfig {
            n_clusters: 3,
            mode: CoordinationMode::Decentralized,
            noise: NoiseProcess::default(),
            wls: WlsOptions::default(),
            decomposition: DecompositionOptions::default(),
            kway: KwayOptions::default(),
            repartition: RepartitionOptions::default(),
            g1: 3.7579,
            g2: 5.2464,
            relay_rate: pgse_medici::throttle::PAPER_RELAY_RATE,
            middleware: MwConfig::default(),
            exchange_deadline: Duration::from_secs(30),
            chaos: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = PrototypeConfig::default();
        assert_eq!(c.n_clusters, 3);
        assert_eq!(c.mode, CoordinationMode::Decentralized);
        assert!((c.g1 - 3.7579).abs() < 1e-12);
        assert!((c.relay_rate - 0.4e9).abs() < 1.0);
        assert!(c.chaos.is_none());
        assert_eq!(c.exchange_deadline, Duration::from_secs(30));
    }

    #[test]
    fn chaos_spec_maps_to_fault_plan() {
        let spec = ChaosSpec {
            seed: 7,
            drop_prob: 0.1,
            dead: vec![(0, 1)],
            ..Default::default()
        };
        let plan = spec.fault_plan();
        assert_eq!(plan.seed, 7);
        assert!((plan.drop_prob - 0.1).abs() < 1e-12);
        assert!(spec.is_dead(0, 1));
        assert!(!spec.is_dead(1, 0));
    }
}

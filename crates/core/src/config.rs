//! Prototype configuration.

use pgse_dse::DecompositionOptions;
use pgse_estimation::telemetry::NoiseProcess;
use pgse_estimation::wls::WlsOptions;
use pgse_partition::kway::KwayOptions;
use pgse_partition::repartition::RepartitionOptions;

/// How state estimators coordinate (paper Fig. 1 supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinationMode {
    /// Peer-to-peer exchange between neighbouring estimators
    /// (decentralized DSE — the paper's focus, after [5]).
    Decentralized,
    /// All exchange goes through a central coordinator (hierarchical state
    /// estimation — today's industry structure).
    Hierarchical,
}

/// Configuration of a [`crate::SystemPrototype`].
#[derive(Debug, Clone)]
pub struct PrototypeConfig {
    /// Number of HPC clusters; `3` reproduces the paper's testbed.
    pub n_clusters: usize,
    /// Coordination structure.
    pub mode: CoordinationMode,
    /// The time-frame noise process `x = f(δt)`.
    pub noise: NoiseProcess,
    /// WLS solver settings for every estimator.
    pub wls: WlsOptions,
    /// Preliminary-step settings.
    pub decomposition: DecompositionOptions,
    /// Multilevel partitioner settings (before Step 1).
    pub kway: KwayOptions,
    /// Adaptive repartitioner settings (before Step 2).
    pub repartition: RepartitionOptions,
    /// Iteration-model slope `g1` (paper §IV-B.2; 14-bus empirical value).
    pub g1: f64,
    /// Iteration-model intercept `g2`.
    pub g2: f64,
    /// Middleware relay rate in bytes/second (paper measured ≈ 0.4 GB/s).
    pub relay_rate: f64,
}

impl Default for PrototypeConfig {
    fn default() -> Self {
        PrototypeConfig {
            n_clusters: 3,
            mode: CoordinationMode::Decentralized,
            noise: NoiseProcess::default(),
            wls: WlsOptions::default(),
            decomposition: DecompositionOptions::default(),
            kway: KwayOptions::default(),
            repartition: RepartitionOptions::default(),
            g1: 3.7579,
            g2: 5.2464,
            relay_rate: pgse_medici::throttle::PAPER_RELAY_RATE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = PrototypeConfig::default();
        assert_eq!(c.n_clusters, 3);
        assert_eq!(c.mode, CoordinationMode::Decentralized);
        assert!((c.g1 - 3.7579).abs() < 1e-12);
        assert!((c.relay_rate - 0.4e9).abs() < 1.0);
    }
}

//! # pgse-core
//!
//! The system-architecture prototype of the paper: distributed state
//! estimators, each running on an HPC cluster, connected by the MeDICi
//! middleware, with the METIS-style mapping method assigning subsystems to
//! clusters each time frame (Fig. 1).
//!
//! A [`SystemPrototype`] owns the whole deployment:
//!
//! * the interconnection, its solved operating point, and the DSE
//!   decomposition (from `pgse-dse`);
//! * a [`pgse_cluster::ClusterFleet`] (default: the paper's Nwiceb /
//!   Catamount / Chinook testbed);
//! * per-area estimators whose pseudo-measurement exchange rides real
//!   middleware pipelines (`pgse-medici`) — either **peer-to-peer**
//!   (decentralized DSE) or **hierarchical** (via a coordinator), the two
//!   structures Fig. 1 supports;
//! * the mapping method (`pgse-partition`): noise-driven weight update,
//!   partitioning before Step 1, migration-penalized repartitioning before
//!   Step 2, and the implied raw-data redistribution.
//!
//! Calling [`SystemPrototype::run_frame`] executes one full time frame and
//! returns a [`FrameReport`] with every quantity the paper's evaluation
//! tracks.

pub mod config;
pub mod prototype;
pub mod report;

pub use config::{ChaosSpec, CoordinationMode, PrototypeConfig};
pub use prototype::SystemPrototype;
pub use report::FrameReport;

//! Per-time-frame reporting.

use serde::Serialize;
use std::time::Duration;

/// Everything one time frame of the prototype produced — the quantities
/// behind the paper's Tables I–II and Figures 4–5, plus end-to-end
/// accuracy and timing.
#[derive(Debug, Clone, Serialize)]
pub struct FrameReport {
    /// Frame index.
    pub frame: u64,
    /// Seconds since the run's epoch (`δt`).
    pub dt_seconds: f64,
    /// Estimated noise level `x = f(δt)`.
    pub noise_level: f64,
    /// Predicted Gauss–Newton iterations `Ni = g1·x + g2`.
    pub predicted_iterations: f64,
    /// Observed Step-1 iteration count per area.
    pub step1_iterations: Vec<usize>,
    /// Subsystem → cluster mapping used for Step 1.
    pub step1_assignment: Vec<usize>,
    /// Load-imbalance ratio of the Step-1 mapping (paper: 1.035).
    pub step1_imbalance: f64,
    /// Subsystem → cluster mapping used for Step 2.
    pub step2_assignment: Vec<usize>,
    /// Load-imbalance ratio of the Step-2 mapping (paper: 1.079).
    pub step2_imbalance: f64,
    /// Communication edge cut of the Step-2 mapping.
    pub step2_cut: f64,
    /// Subsystems whose data had to move between clusters (paper: 2).
    pub migrations: usize,
    /// Raw measurement bytes redistributed by the re-mapping.
    pub redistributed_bytes: u64,
    /// Pseudo-measurement bytes exchanged through the middleware.
    pub exchanged_bytes: u64,
    /// Middleware frames relayed during the exchange.
    pub relayed_frames: u64,
    /// Wall time of Step 1 across the fleet.
    pub step1_time: Duration,
    /// Wall time of the middleware exchange.
    pub exchange_time: Duration,
    /// Wall time of Step 2 across the fleet.
    pub step2_time: Duration,
    /// Directed exchanges `(from_area, to_area)` whose pseudo measurements
    /// never reached the destination this frame (dropped, truncated, dead
    /// pipeline, or past the round deadline).
    pub missed_exchanges: Vec<(usize, usize)>,
    /// Areas that received *no* neighbour data and fell back to their
    /// Step-1 solution.
    pub degraded_areas: Vec<usize>,
    /// Frames that arrived corrupt (truncated mid-body or unparseable).
    pub corrupt_frames: u64,
    /// Duplicate deliveries discarded during collection (a duplication
    /// fault or retransmit race). Discarded duplicates never count toward
    /// the received frames, so they cannot mask a still-missing source.
    pub duplicate_frames: u64,
    /// Straggler frames that arrived after their round's collection ended
    /// and were drained before the next round.
    pub late_frames: u64,
    /// RMS voltage-magnitude error of the aggregated estimate vs truth.
    pub vm_rmse: f64,
    /// RMS angle error (radians) vs truth.
    pub va_rmse: f64,
    /// Buses per cluster under the Step-1 mapping (Table II's quantity).
    pub buses_per_cluster: Vec<usize>,
}

impl FrameReport {
    /// Total wall time of the frame's estimation pipeline.
    pub fn total_time(&self) -> Duration {
        self.step1_time + self.exchange_time + self.step2_time
    }

    /// Whether every exchange arrived intact and on time. Discarded
    /// duplicates and drained stragglers do *not* make a round unhealthy:
    /// every distinct source still arrived, and the double-count
    /// accounting keeps them out of the received totals.
    pub fn exchange_healthy(&self) -> bool {
        self.missed_exchanges.is_empty()
            && self.degraded_areas.is_empty()
            && self.corrupt_frames == 0
    }

    /// Pretty JSON for the experiment log.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

//! A k-way partition and the metrics the paper reports.

use crate::graph::WeightedGraph;

/// An assignment of every vertex to one of `k` parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[v]` is the part of vertex `v`, in `0..k`.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub k: usize,
}

impl Partition {
    /// Creates a partition, validating the assignment range.
    ///
    /// # Panics
    /// Panics if any entry is `>= k` or `k == 0`.
    pub fn new(assignment: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(assignment.iter().all(|&p| p < k), "part out of range");
        Partition { assignment, k }
    }

    /// Vertices in part `p`, ascending.
    pub fn part(&self, p: usize) -> Vec<usize> {
        (0..self.assignment.len()).filter(|&v| self.assignment[v] == p).collect()
    }

    /// Total vertex weight per part.
    pub fn part_loads(&self, g: &WeightedGraph) -> Vec<f64> {
        let mut loads = vec![0.0; self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            loads[p] += g.vertex_weight(v);
        }
        loads
    }

    /// The paper's *load-imbalance ratio*: max part load over average part
    /// load (1.0 is perfect; METIS suggests ≤ 1.05).
    pub fn imbalance(&self, g: &WeightedGraph) -> f64 {
        let loads = self.part_loads(g);
        let avg = g.total_weight() / self.k as f64;
        loads.iter().fold(0.0f64, |m, &l| m.max(l)) / avg
    }

    /// Total weight of edges crossing between parts (the communication the
    /// mapping must pay in DSE Step 2).
    pub fn edge_cut(&self, g: &WeightedGraph) -> f64 {
        g.edges()
            .into_iter()
            .filter(|&(u, v, _)| self.assignment[u] != self.assignment[v])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Number of vertices assigned differently than in `previous` — the
    /// subsystems whose raw measurement data must be redistributed between
    /// clusters when the mapping changes (§IV-C).
    pub fn migration(&self, previous: &Partition) -> usize {
        assert_eq!(self.assignment.len(), previous.assignment.len(), "size mismatch");
        self.assignment
            .iter()
            .zip(&previous.assignment)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// True when every part is non-empty.
    pub fn all_parts_used(&self) -> bool {
        let mut used = vec![false; self.k];
        for &p in &self.assignment {
            used[p] = true;
        }
        used.into_iter().all(|u| u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_graph() -> WeightedGraph {
        // The paper's IEEE-118 decomposition graph (Table I).
        let mut g = WeightedGraph::with_vertex_weights(vec![
            14.0, 13.0, 13.0, 13.0, 13.0, 12.0, 14.0, 13.0, 13.0,
        ]);
        for (u, v) in [
            (0, 1),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 5),
            (2, 5),
            (3, 4),
            (3, 6),
            (4, 5),
            (4, 6),
            (4, 7),
            (6, 8),
        ] {
            let w = g.vertex_weight(u) + g.vertex_weight(v);
            g.add_edge(u, v, w);
        }
        g
    }

    #[test]
    fn figure4_partition_metrics() {
        // Fig. 4: {1,4,8} / {2,3,6} / {5,7,9} (1-indexed) → zero-indexed
        // parts {0,3,7}, {1,2,5}, {4,6,8}.
        let g = table1_graph();
        let mut asg = vec![0usize; 9];
        for v in [1, 2, 5] {
            asg[v] = 1;
        }
        for v in [4, 6, 8] {
            asg[v] = 2;
        }
        let p = Partition::new(asg, 3);
        let loads = p.part_loads(&g);
        assert_eq!(loads, vec![40.0, 38.0, 40.0]);
        // 40 / (118/3) ≈ 1.0169 — comfortably inside METIS's 1.05.
        assert!((p.imbalance(&g) - 40.0 / (118.0 / 3.0)).abs() < 1e-12);
        assert!(p.imbalance(&g) < 1.05);
    }

    #[test]
    fn edge_cut_counts_crossing_weights_once() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 7.0);
        let p = Partition::new(vec![0, 0, 1], 2);
        assert_eq!(p.edge_cut(&g), 7.0);
    }

    #[test]
    fn migration_counts_moves() {
        let a = Partition::new(vec![0, 1, 2, 0], 3);
        let b = Partition::new(vec![0, 2, 2, 1], 3);
        assert_eq!(b.migration(&a), 2);
        assert_eq!(a.migration(&a), 0);
    }

    #[test]
    fn parts_enumerate_members() {
        let p = Partition::new(vec![1, 0, 1], 2);
        assert_eq!(p.part(1), vec![0, 2]);
        assert!(p.all_parts_used());
        let q = Partition::new(vec![0, 0, 0], 2);
        assert!(!q.all_parts_used());
    }

    #[test]
    #[should_panic(expected = "part out of range")]
    fn out_of_range_rejected() {
        Partition::new(vec![0, 3], 3);
    }
}

//! Adaptive repartitioning.
//!
//! Between DSE Step 1 and Step 2 the graph weights change (edge weights
//! become real communication volumes, vertex weights change with the new
//! computation estimate), and the paper re-invokes METIS's repartitioning
//! routine: improve the objective under the *new* weights while moving as
//! few subsystems as possible, because every moved subsystem forces its raw
//! measurement data to be redistributed to another cluster (§IV-C). In the
//! paper's example only subsystems 4 and 5 swap clusters (Figs. 4→5).

use crate::graph::WeightedGraph;
use crate::kway::KwayOptions;
use crate::partition::Partition;

/// Options of the adaptive repartitioner.
#[derive(Debug, Clone, Copy)]
pub struct RepartitionOptions {
    /// Allowed load-imbalance ratio under the new weights.
    pub imbalance_tol: f64,
    /// Cut-gain a move must additionally earn per unit of migration (the
    /// redistribution cost of moving a subsystem's raw data).
    pub migration_penalty: f64,
    /// Refinement passes.
    pub passes: usize,
}

impl Default for RepartitionOptions {
    fn default() -> Self {
        RepartitionOptions { imbalance_tol: 1.10, migration_penalty: 1.0, passes: 8 }
    }
}

/// Adapts `previous` to the (re-weighted) graph `g`.
///
/// Starts from the previous assignment and performs migration-penalized
/// FM moves: a move's score is its edge-cut gain minus
/// `migration_penalty × Δmigration`, with rebalancing moves forced when a
/// part exceeds the tolerance.
///
/// # Panics
/// Panics when `previous` does not match `g`'s vertex count.
pub fn repartition(
    g: &WeightedGraph,
    previous: &Partition,
    opts: &RepartitionOptions,
) -> Partition {
    assert_eq!(previous.assignment.len(), g.n(), "partition/graph size mismatch");
    let k = previous.k;
    let mut assignment = previous.assignment.clone();
    let avg = g.total_weight() / k as f64;
    let max_load = opts.imbalance_tol * avg;
    let mut loads = vec![0.0f64; k];
    for (v, &p) in assignment.iter().enumerate() {
        loads[p] += g.vertex_weight(v);
    }

    for _ in 0..opts.passes {
        let mut moved = false;
        for v in 0..g.n() {
            let a = assignment[v];
            let w = g.vertex_weight(v);
            let part_count = assignment.iter().filter(|&&p| p == a).count();
            if part_count <= 1 {
                continue;
            }
            let mut conn = vec![0.0f64; k];
            for &(u, ew) in g.neighbors(v) {
                conn[assignment[u]] += ew;
            }
            let overloaded = loads[a] > max_load;
            let mut best: Option<(usize, f64)> = None;
            for b in 0..k {
                if b == a {
                    continue;
                }
                let fits = loads[b] + w <= max_load;
                let improves_balance = loads[b] + w < loads[a];
                if !(fits || (overloaded && improves_balance)) {
                    continue;
                }
                // Migration delta of this move relative to the previous
                // mapping: +1 when leaving the original cluster, −1 when
                // returning to it.
                let dmig = (b != previous.assignment[v]) as i64
                    - (a != previous.assignment[v]) as i64;
                let gain = conn[b] - conn[a] - opts.migration_penalty * dmig as f64;
                let acceptable =
                    if overloaded && improves_balance { true } else { gain > 1e-12 };
                if acceptable {
                    let score = if overloaded { gain + (loads[a] - loads[b]) } else { gain };
                    if best.is_none_or(|(_, s)| score > s) {
                        best = Some((b, score));
                    }
                }
            }
            if let Some((b, _)) = best {
                loads[a] -= w;
                loads[b] += w;
                assignment[v] = b;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    Partition::new(assignment, k)
}

/// Remaps `previous` onto the surviving parts after the clusters in
/// `dead` disappear from the fleet.
///
/// This is the failover variant of the paper's pre-Step-1/pre-Step-2
/// remap: the objective is still balance + connectivity, but the
/// migration constraint is absolute — **only vertices hosted on a dead
/// part move**. Survivors keep every subsystem they already hold, so
/// the redistribution plan derived from the result (`pgse-cluster`'s
/// `plan_redistribution`) contains
/// exclusively moves that originate at a dead cluster, and the raw-data
/// shipping cost of the failover is the minimum the placement allows.
///
/// Dead-part vertices are placed heaviest-first: each goes to the
/// surviving part with the strongest edge connectivity to the already
/// placed assignment among parts that stay under `opts.imbalance_tol`
/// (ties broken by lighter load, then lower part index); when no
/// survivor fits the tolerance, the least-loaded survivor takes it. The
/// procedure is fully deterministic for deterministic inputs.
///
/// The part count `k` is preserved — dead parts simply end up empty —
/// so the returned assignment stays directly comparable with `previous`
/// for migration accounting.
///
/// # Panics
/// Panics when `previous` does not match `g`'s vertex count, when `dead`
/// names a part `>= k`, or when every part is dead.
pub fn repartition_shrink(
    g: &WeightedGraph,
    previous: &Partition,
    dead: &[usize],
    opts: &RepartitionOptions,
) -> Partition {
    assert_eq!(previous.assignment.len(), g.n(), "partition/graph size mismatch");
    let k = previous.k;
    let mut is_dead = vec![false; k];
    for &d in dead {
        assert!(d < k, "dead part {d} out of range (k = {k})");
        is_dead[d] = true;
    }
    let survivors: Vec<usize> = (0..k).filter(|&p| !is_dead[p]).collect();
    assert!(!survivors.is_empty(), "every part is dead; nothing to shrink onto");

    let mut assignment = previous.assignment.clone();
    let avg = g.total_weight() / survivors.len() as f64;
    let max_load = opts.imbalance_tol * avg;
    let mut loads = vec![0.0f64; k];
    for (v, &p) in assignment.iter().enumerate() {
        if !is_dead[p] {
            loads[p] += g.vertex_weight(v);
        }
    }

    // Orphans, heaviest first (index-ordered within equal weights).
    let mut movers: Vec<usize> =
        (0..g.n()).filter(|&v| is_dead[assignment[v]]).collect();
    movers.sort_by(|&a, &b| {
        g.vertex_weight(b)
            .partial_cmp(&g.vertex_weight(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    for v in movers {
        let w = g.vertex_weight(v);
        let mut conn = vec![0.0f64; k];
        for &(u, ew) in g.neighbors(v) {
            // Earlier movers are already re-placed; still-orphaned
            // neighbours contribute nothing (their part is going away).
            if !is_dead[assignment[u]] {
                conn[assignment[u]] += ew;
            }
        }
        let mut best: Option<usize> = None;
        for &b in &survivors {
            let fits = loads[b] + w <= max_load;
            let better = match best {
                None => true,
                Some(cur) => {
                    let cur_fits = loads[cur] + w <= max_load;
                    // Lexicographic: fits > connectivity > lighter load.
                    (fits, conn[b], -loads[b]) > (cur_fits, conn[cur], -loads[cur])
                }
            };
            if better {
                best = Some(b);
            }
        }
        let b = best.expect("at least one survivor");
        assignment[v] = b;
        loads[b] += w;
    }
    Partition::new(assignment, k)
}

/// Convenience: the paper's full sequence — partition for Step 1, then
/// repartition for Step 2 after the weights change.
pub fn partition_then_adapt(
    step1_graph: &WeightedGraph,
    step2_graph: &WeightedGraph,
    k: usize,
    kway: &KwayOptions,
    re: &RepartitionOptions,
) -> (Partition, Partition) {
    let p1 = crate::kway::partition_kway(step1_graph, k, kway);
    let p2 = repartition(step2_graph, &p1, re);
    (p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::{partition_kway, tests::table1_graph};

    #[test]
    fn stable_weights_cause_no_migration() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        let p2 = repartition(&g, &p1, &RepartitionOptions::default());
        assert_eq!(p2.migration(&p1), 0);
    }

    #[test]
    fn weight_shift_triggers_bounded_migration() {
        // Step 2 weights: one subsystem becomes much more expensive.
        let g1 = table1_graph();
        let p1 = partition_kway(&g1, 3, &KwayOptions::default());
        let mut g2 = table1_graph();
        g2.set_vertex_weight(4, 40.0); // subsystem 5 triples in cost
        let p2 = repartition(&g2, &p1, &RepartitionOptions::default());
        assert!(p2.imbalance(&g2) <= 1.35, "imbalance {}", p2.imbalance(&g2));
        // Migration stays small — the paper's example moves two subsystems.
        assert!(p2.migration(&p1) <= 3, "migration {}", p2.migration(&p1));
    }

    #[test]
    fn migration_penalty_suppresses_marginal_moves() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        // With an enormous penalty, nothing moves even if small cut gains
        // exist.
        let frozen = repartition(
            &g,
            &p1,
            &RepartitionOptions { migration_penalty: 1e9, ..Default::default() },
        );
        assert_eq!(frozen.migration(&p1), 0);
    }

    #[test]
    fn rebalancing_overrides_penalty_when_overloaded() {
        let mut g = table1_graph();
        // Make part loads wildly uneven under the old mapping.
        let p1 = partition_kway(&table1_graph(), 3, &KwayOptions::default());
        for &v in &p1.part(0) {
            g.set_vertex_weight(v, 100.0);
        }
        let p2 = repartition(
            &g,
            &p1,
            &RepartitionOptions { migration_penalty: 10.0, ..Default::default() },
        );
        assert!(p2.imbalance(&g) < p1.imbalance(&g));
        assert!(p2.migration(&p1) > 0);
    }

    #[test]
    fn shrink_moves_only_dead_part_vertices() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        for dead in 0..3usize {
            let shrunk = repartition_shrink(&g, &p1, &[dead], &RepartitionOptions::default());
            for v in 0..g.n() {
                if p1.assignment[v] != dead {
                    assert_eq!(
                        shrunk.assignment[v], p1.assignment[v],
                        "vertex {v} moved although its part {} survived",
                        p1.assignment[v]
                    );
                } else {
                    assert_ne!(shrunk.assignment[v], dead, "vertex {v} left on dead part");
                }
            }
            // The dead part is empty; k is preserved for migration math.
            assert_eq!(shrunk.k, 3);
            assert!(shrunk.part(dead).is_empty());
            // Exactly the dead part's vertices migrated.
            assert_eq!(shrunk.migration(&p1), p1.part(dead).len());
        }
    }

    #[test]
    fn shrink_keeps_survivor_loads_reasonably_balanced() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        let shrunk = repartition_shrink(&g, &p1, &[2], &RepartitionOptions::default());
        let loads = shrunk.part_loads(&g);
        let total: f64 = loads.iter().sum();
        let avg = total / 2.0;
        for p in [0usize, 1] {
            assert!(
                loads[p] <= 1.5 * avg,
                "survivor {p} overloaded: {} vs avg {avg}",
                loads[p]
            );
        }
        assert_eq!(loads[2], 0.0);
    }

    #[test]
    fn shrink_is_deterministic() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        let a = repartition_shrink(&g, &p1, &[1], &RepartitionOptions::default());
        let b = repartition_shrink(&g, &p1, &[1], &RepartitionOptions::default());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn shrink_handles_multiple_dead_parts() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        let shrunk = repartition_shrink(&g, &p1, &[0, 2], &RepartitionOptions::default());
        // Everything lands on the lone survivor.
        assert!(shrunk.assignment.iter().all(|&p| p == 1));
    }

    #[test]
    #[should_panic(expected = "every part is dead")]
    fn shrink_rejects_killing_the_whole_fleet() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        repartition_shrink(&g, &p1, &[0, 1, 2], &RepartitionOptions::default());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shrink_rejects_unknown_parts() {
        let g = table1_graph();
        let p1 = partition_kway(&g, 3, &KwayOptions::default());
        repartition_shrink(&g, &p1, &[7], &RepartitionOptions::default());
    }

    #[test]
    fn full_sequence_mirrors_paper_workflow() {
        // Step 1: uniform edge weights (no Step-1 communication).
        let mut g1 = table1_graph();
        for (u, v, _) in g1.edges() {
            g1.set_edge_weight(u, v, 1.0);
        }
        // Step 2: Table I communication weights.
        let g2 = table1_graph();
        let (p1, p2) = partition_then_adapt(
            &g1,
            &g2,
            3,
            &KwayOptions::default(),
            &RepartitionOptions::default(),
        );
        assert!(p1.all_parts_used() && p2.all_parts_used());
        assert!(p2.imbalance(&g2) <= 1.10);
        // Paper: the Step-2 scheme moves only a couple of subsystems.
        assert!(p2.migration(&p1) <= 4);
    }
}

//! # pgse-partition
//!
//! Graph partitioning for mapping power-system decompositions onto HPC
//! clusters — the role METIS plays in the paper (§IV-B.3).
//!
//! The decomposition graph has one vertex per subsystem (vertex weight =
//! estimated computation cost) and one edge per tie-line-connected pair
//! (edge weight = estimated communication volume). Partitioning it into `p`
//! parts assigns subsystems to HPC clusters so that computation is balanced
//! and inter-cluster communication minimized; *re*partitioning adapts the
//! mapping when the weights change between DSE Step 1 and Step 2 while
//! keeping migration (data redistribution) small.
//!
//! * [`graph::WeightedGraph`] — the weighted decomposition graph;
//! * [`partition::Partition`] — an assignment plus the paper's metrics
//!   (load-imbalance ratio, edge cut, migration count);
//! * [`kway`] — multilevel k-way partitioning (heavy-edge-matching
//!   coarsening, greedy initial assignment, FM-style refinement);
//! * [`repartition()`] — adaptive repartitioning with a migration penalty;
//! * [`brute`] — exact enumeration for tiny graphs (test oracle; the
//!   paper's 9-vertex graph is solved exactly);
//! * [`weights`] — the paper's weight model `Wv = Nb·(g1·x + g2)`,
//!   `We = gs(s1) + gs(s2)`.

pub mod brute;
pub mod graph;
pub mod kway;
pub mod partition;
pub mod repartition;
pub mod weights;

pub use brute::brute_force_optimal;
pub use graph::WeightedGraph;
pub use kway::{partition_kway, KwayOptions};
pub use partition::Partition;
pub use repartition::{repartition, repartition_shrink, RepartitionOptions};

//! The weighted, undirected decomposition graph.

/// An undirected graph with positive vertex and edge weights.
///
/// Vertices are `0..n`. Parallel edges are merged by summing weights;
/// self-loops are rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    vwgt: Vec<f64>,
    adj: Vec<Vec<(usize, f64)>>,
}

impl WeightedGraph {
    /// A graph with `n` vertices of weight 1 and no edges.
    pub fn new(n: usize) -> Self {
        WeightedGraph { vwgt: vec![1.0; n], adj: vec![Vec::new(); n] }
    }

    /// A graph with the given vertex weights and no edges.
    ///
    /// # Panics
    /// Panics if any weight is not strictly positive.
    pub fn with_vertex_weights(vwgt: Vec<f64>) -> Self {
        assert!(vwgt.iter().all(|&w| w > 0.0), "vertex weights must be positive");
        let n = vwgt.len();
        WeightedGraph { vwgt, adj: vec![Vec::new(); n] }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of (undirected) edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Vertex weight of `v`.
    pub fn vertex_weight(&self, v: usize) -> f64 {
        self.vwgt[v]
    }

    /// Sets the vertex weight of `v`.
    ///
    /// # Panics
    /// Panics on non-positive weight.
    pub fn set_vertex_weight(&mut self, v: usize, w: f64) {
        assert!(w > 0.0, "vertex weight must be positive");
        self.vwgt[v] = w;
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Adds (or accumulates onto) the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range vertices, or non-positive weight.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u != v, "self-loop on vertex {u}");
        assert!(u < self.n() && v < self.n(), "edge ({u},{v}) out of range");
        assert!(w > 0.0, "edge weight must be positive");
        for (a, b) in [(u, v), (v, u)] {
            match self.adj[a].iter_mut().find(|(t, _)| *t == b) {
                Some((_, wv)) => *wv += w,
                None => self.adj[a].push((b, w)),
            }
        }
    }

    /// Sets the weight of an existing edge `{u, v}` on both directions.
    ///
    /// # Panics
    /// Panics if the edge does not exist or the weight is not positive.
    pub fn set_edge_weight(&mut self, u: usize, v: usize, w: f64) {
        assert!(w > 0.0, "edge weight must be positive");
        for (a, b) in [(u, v), (v, u)] {
            let e = self.adj[a]
                .iter_mut()
                .find(|(t, _)| *t == b)
                .unwrap_or_else(|| panic!("edge ({u},{v}) does not exist"));
            e.1 = w;
        }
    }

    /// The neighbours of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.adj[v]
    }

    /// The weight of edge `{u, v}`, or 0 when absent.
    pub fn edge_weight(&self, u: usize, v: usize) -> f64 {
        self.adj[u].iter().find(|(t, _)| *t == v).map_or(0.0, |(_, w)| *w)
    }

    /// All undirected edges, each once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.n_edges());
        for u in 0..self.n() {
            for &(v, w) in &self.adj[u] {
                if u < v {
                    out.push((u, v, w));
                }
            }
        }
        out
    }

    /// Graph diameter in hops (unweighted BFS); `usize::MAX` when
    /// disconnected. The DSE exchange rounds are bounded by this (§II).
    pub fn diameter(&self) -> usize {
        let n = self.n();
        let mut diameter = 0usize;
        for s in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &(w, _) in &self.adj[v] {
                    if dist[w] == usize::MAX {
                        dist[w] = dist[v] + 1;
                        queue.push_back(w);
                    }
                }
            }
            let ecc = dist.iter().copied().max().expect("non-empty graph");
            if ecc == usize::MAX {
                return usize::MAX;
            }
            diameter = diameter.max(ecc);
        }
        diameter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_is_symmetric_and_merges() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 0, 3.0);
        assert_eq!(g.edge_weight(0, 1), 5.0);
        assert_eq!(g.edge_weight(1, 0), 5.0);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn set_edge_weight_overwrites() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 2.0);
        g.set_edge_weight(0, 1, 7.0);
        assert_eq!(g.edge_weight(1, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        WeightedGraph::new(2).add_edge(1, 1, 1.0);
    }

    #[test]
    fn vertex_weights_accumulate_total() {
        let g = WeightedGraph::with_vertex_weights(vec![14.0, 13.0, 12.0]);
        assert_eq!(g.total_weight(), 39.0);
        assert_eq!(g.vertex_weight(0), 14.0);
    }

    #[test]
    fn edges_listed_once() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(3, 0, 1.0);
        let e = g.edges();
        assert_eq!(e.len(), 3);
        assert!(e.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn diameter_of_path() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn diameter_of_disconnected_is_max() {
        let g = WeightedGraph::new(3);
        assert_eq!(g.diameter(), usize::MAX);
    }
}

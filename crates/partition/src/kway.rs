//! Multilevel k-way partitioning.
//!
//! The classic METIS recipe at prototype scale:
//!
//! 1. **Coarsen** by heavy-edge matching until the graph is small;
//! 2. **Initial partition** of the coarsest graph by greedy
//!    largest-weight-first assignment to the least-loaded part;
//! 3. **Uncoarsen**, projecting the assignment back level by level and
//!    running an FM-style boundary **refinement** pass at each level.
//!
//! Refinement moves a vertex when it reduces the edge cut without breaking
//! the balance constraint, or when it repairs an overloaded part.

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

use crate::graph::WeightedGraph;
use crate::partition::Partition;

/// Options of the multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct KwayOptions {
    /// Allowed load-imbalance ratio (METIS default threshold: 1.05).
    pub imbalance_tol: f64,
    /// Coarsening stops once the graph has at most `coarsen_to × k`
    /// vertices.
    pub coarsen_to: usize,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed for matching/tie-breaking (results are deterministic per
    /// seed).
    pub seed: u64,
}

impl Default for KwayOptions {
    fn default() -> Self {
        KwayOptions { imbalance_tol: 1.05, coarsen_to: 8, refine_passes: 8, seed: 1 }
    }
}

/// Partitions `g` into `k` parts.
///
/// # Panics
/// Panics if `k == 0` or `k > g.n()`.
pub fn partition_kway(g: &WeightedGraph, k: usize, opts: &KwayOptions) -> Partition {
    assert!(k > 0, "k must be positive");
    assert!(k <= g.n(), "more parts than vertices");
    if k == g.n() {
        return Partition::new((0..g.n()).collect(), k);
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Coarsening phase: a stack of (graph, map-to-coarse).
    let mut levels: Vec<(WeightedGraph, Vec<usize>)> = Vec::new();
    let mut current = g.clone();
    while current.n() > opts.coarsen_to * k {
        let (coarse, map) = coarsen_once(&current, &mut rng);
        if coarse.n() == current.n() {
            break; // no matching progress (e.g. no edges)
        }
        levels.push((current, map));
        current = coarse;
    }

    // Initial partition of the coarsest graph.
    let mut assignment = greedy_initial(&current, k);
    refine(&current, &mut assignment, k, opts);

    // Uncoarsening with refinement.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_assignment = vec![0usize; fine.n()];
        for v in 0..fine.n() {
            fine_assignment[v] = assignment[map[v]];
        }
        assignment = fine_assignment;
        refine(&fine, &mut assignment, k, opts);
        current = fine;
    }
    let _ = current;
    Partition::new(assignment, k)
}

/// One heavy-edge-matching coarsening step. Returns the coarse graph and
/// the fine→coarse vertex map.
fn coarsen_once(g: &WeightedGraph, rng: &mut StdRng) -> (WeightedGraph, Vec<usize>) {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut mate = vec![usize::MAX; n];
    for &v in &order {
        if mate[v] != usize::MAX {
            continue;
        }
        // Match with the heaviest-edge unmatched neighbour.
        let best = g
            .neighbors(v)
            .iter()
            .filter(|(u, _)| mate[*u] == usize::MAX && *u != v)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"));
        match best {
            Some(&(u, _)) => {
                mate[v] = u;
                mate[u] = v;
            }
            None => mate[v] = v, // stays single
        }
    }
    // Assign coarse ids.
    let mut map = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if map[v] != usize::MAX {
            continue;
        }
        map[v] = next;
        let m = mate[v];
        if m != v && m != usize::MAX {
            map[m] = next;
        }
        next += 1;
    }
    // Build the coarse graph.
    let mut vwgt = vec![0.0f64; next];
    for v in 0..n {
        vwgt[map[v]] += g.vertex_weight(v);
    }
    let mut coarse = WeightedGraph::with_vertex_weights(vwgt);
    for (u, v, w) in g.edges() {
        let (cu, cv) = (map[u], map[v]);
        if cu != cv {
            coarse.add_edge(cu, cv, w);
        }
    }
    (coarse, map)
}

/// Region-growing initial assignment: seeds are spread by farthest-point
/// sampling, then the least-loaded part repeatedly claims the unassigned
/// vertex most strongly connected to it. Produces contiguous, balanced
/// regions — much better refinement starting points than weight-greedy
/// striping.
fn greedy_initial(g: &WeightedGraph, k: usize) -> Vec<usize> {
    let n = g.n();
    // Farthest-point seeds (BFS hop distance).
    let mut seeds = vec![0usize];
    while seeds.len() < k {
        let dist = multi_source_bfs(g, &seeds);
        let far = (0..n)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| if dist[v] == usize::MAX { n + 1 } else { dist[v] })
            .expect("k <= n leaves unseeded vertices");
        seeds.push(far);
    }
    let mut assignment = vec![usize::MAX; n];
    let mut loads = vec![0.0f64; k];
    for (p, &s) in seeds.iter().enumerate() {
        assignment[s] = p;
        loads[p] += g.vertex_weight(s);
    }
    let mut remaining = n - k;
    while remaining > 0 {
        // Least-loaded part claims next.
        let p = (0..k)
            .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite loads"))
            .expect("k > 0");
        // Best unassigned vertex: strongest connectivity to part p; fall
        // back to any unassigned vertex (disconnected graphs).
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if assignment[v] != usize::MAX {
                continue;
            }
            let conn: f64 = g
                .neighbors(v)
                .iter()
                .filter(|(u, _)| assignment[*u] == p)
                .map(|(_, w)| w)
                .sum();
            if best.is_none_or(|(_, c)| conn > c) {
                best = Some((v, conn));
            }
        }
        let (v, _) = best.expect("remaining > 0");
        assignment[v] = p;
        loads[p] += g.vertex_weight(v);
        remaining -= 1;
    }
    assignment
}

/// BFS hop distances from a set of sources.
fn multi_source_bfs(g: &WeightedGraph, sources: &[usize]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    for &s in sources {
        dist[s] = 0;
        queue.push_back(s);
    }
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// FM-style refinement passes: cut-reducing moves under the balance
/// constraint, plus rebalancing moves when a part exceeds the tolerance.
pub(crate) fn refine(g: &WeightedGraph, assignment: &mut [usize], k: usize, opts: &KwayOptions) {
    let avg = g.total_weight() / k as f64;
    let max_load = opts.imbalance_tol * avg;
    let mut loads = vec![0.0f64; k];
    for (v, &p) in assignment.iter().enumerate() {
        loads[p] += g.vertex_weight(v);
    }
    for _ in 0..opts.refine_passes {
        let mut improved = false;
        for v in 0..g.n() {
            let a = assignment[v];
            let w = g.vertex_weight(v);
            // Connectivity of v to each part.
            let mut conn = vec![0.0f64; k];
            for &(u, ew) in g.neighbors(v) {
                conn[assignment[u]] += ew;
            }
            // Don't empty a part (each cluster must host work).
            let part_count = assignment.iter().filter(|&&p| p == a).count();
            if part_count <= 1 {
                continue;
            }
            let overloaded = loads[a] > max_load;
            let mut best: Option<(usize, f64)> = None;
            for b in 0..k {
                if b == a {
                    continue;
                }
                let fits = loads[b] + w <= max_load;
                let improves_balance = loads[b] + w < loads[a];
                if !(fits || (overloaded && improves_balance)) {
                    continue;
                }
                let gain = conn[b] - conn[a];
                let acceptable = if overloaded && improves_balance {
                    // Repairing balance may pay a small cut penalty.
                    true
                } else {
                    gain > 1e-12
                };
                if acceptable {
                    let score = if overloaded { gain + (loads[a] - loads[b]) } else { gain };
                    if best.is_none_or(|(_, s)| score > s) {
                        best = Some((b, score));
                    }
                }
            }
            if let Some((b, _)) = best {
                loads[a] -= w;
                loads[b] += w;
                assignment[v] = b;
                improved = true;
            }
        }
        // KL-style swap pass: escapes balanced local optima that single
        // moves cannot leave (both parts full). Quadratic, so reserved for
        // decomposition-scale graphs.
        if g.n() <= 1024 {
            improved |= swap_pass(g, assignment, &mut loads, max_load);
        }
        if !improved {
            break;
        }
    }
}

/// One pass of cut-reducing pairwise swaps under the balance constraint.
/// Returns whether anything moved.
fn swap_pass(
    g: &WeightedGraph,
    assignment: &mut [usize],
    loads: &mut [f64],
    max_load: f64,
) -> bool {
    let n = g.n();
    let mut any = false;
    for v in 0..n {
        // Gain of moving x into part p, from its current part.
        let gain_to = |assignment: &[usize], x: usize, p: usize| -> f64 {
            let mut to_p = 0.0;
            let mut internal = 0.0;
            for &(u, w) in g.neighbors(x) {
                if assignment[u] == p {
                    to_p += w;
                } else if assignment[u] == assignment[x] {
                    internal += w;
                }
            }
            to_p - internal
        };
        let a = assignment[v];
        let wv = g.vertex_weight(v);
        let mut best: Option<(usize, f64)> = None;
        for u in (v + 1)..n {
            let b = assignment[u];
            if b == a {
                continue;
            }
            let wu = g.vertex_weight(u);
            let fits = loads[a] - wv + wu <= max_load && loads[b] - wu + wv <= max_load;
            if !fits {
                continue;
            }
            let gain = gain_to(assignment, v, b) + gain_to(assignment, u, a)
                - 2.0 * g.edge_weight(u, v);
            if gain > 1e-12 && best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((u, gain));
            }
        }
        if let Some((u, _)) = best {
            let b = assignment[u];
            let wu = g.vertex_weight(u);
            assignment[v] = b;
            assignment[u] = a;
            loads[a] += wu - wv;
            loads[b] += wv - wu;
            any = true;
        }
    }
    any
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The paper's Table I decomposition graph.
    pub(crate) fn table1_graph() -> WeightedGraph {
        let mut g = WeightedGraph::with_vertex_weights(vec![
            14.0, 13.0, 13.0, 13.0, 13.0, 12.0, 14.0, 13.0, 13.0,
        ]);
        for (u, v) in [
            (0, 1),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 5),
            (2, 5),
            (3, 4),
            (3, 6),
            (4, 5),
            (4, 6),
            (4, 7),
            (6, 8),
        ] {
            let w = g.vertex_weight(u) + g.vertex_weight(v);
            g.add_edge(u, v, w);
        }
        g
    }

    #[test]
    fn table1_three_way_is_balanced() {
        // The paper's Fig. 4 scenario: 9 subsystems → 3 clusters, balanced.
        let g = table1_graph();
        let p = partition_kway(&g, 3, &KwayOptions::default());
        assert!(p.all_parts_used());
        let loads = p.part_loads(&g);
        assert_eq!(loads.iter().sum::<f64>(), 118.0);
        // Every part has exactly 3 subsystems at these near-equal weights.
        for part in 0..3 {
            assert_eq!(p.part(part).len(), 3, "loads {loads:?}");
        }
        assert!(p.imbalance(&g) <= 1.05, "imbalance {}", p.imbalance(&g));
    }

    #[test]
    fn two_cliques_are_separated() {
        // Two 4-cliques joined by one light edge: the obvious bisection.
        let mut g = WeightedGraph::new(8);
        for c in [0usize, 4] {
            for i in c..c + 4 {
                for j in (i + 1)..c + 4 {
                    g.add_edge(i, j, 10.0);
                }
            }
        }
        g.add_edge(3, 4, 1.0);
        let p = partition_kway(&g, 2, &KwayOptions::default());
        assert_eq!(p.edge_cut(&g), 1.0);
        assert!(p.imbalance(&g) <= 1.0 + 1e-12);
    }

    #[test]
    fn k_equals_n_is_identity_like() {
        let g = table1_graph();
        let p = partition_kway(&g, 9, &KwayOptions::default());
        assert!(p.all_parts_used());
        assert_eq!(p.assignment.len(), 9);
    }

    #[test]
    fn large_random_graph_stays_within_tolerance() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200;
        let mut g = WeightedGraph::with_vertex_weights(
            (0..n).map(|_| rng.gen_range(5.0..25.0)).collect(),
        );
        for v in 1..n {
            let u = rng.gen_range(0..v);
            g.add_edge(u, v, rng.gen_range(1.0..5.0));
        }
        for _ in 0..300 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && g.edge_weight(u, v) == 0.0 {
                g.add_edge(u, v, rng.gen_range(1.0..5.0));
            }
        }
        for k in [2usize, 4, 8] {
            let p = partition_kway(&g, k, &KwayOptions::default());
            assert!(p.all_parts_used(), "k={k}");
            // Weighted graphs with coarse granularity can slightly exceed
            // the tolerance; allow a small slack above the target.
            assert!(p.imbalance(&g) <= 1.15, "k={k} imbalance {}", p.imbalance(&g));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = table1_graph();
        let a = partition_kway(&g, 3, &KwayOptions::default());
        let b = partition_kway(&g, 3, &KwayOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn refinement_reduces_cut_of_bad_start() {
        let g = table1_graph();
        // Deliberately bad: stripes.
        let mut asg: Vec<usize> = (0..9).map(|v| v % 3).collect();
        let before = Partition::new(asg.clone(), 3).edge_cut(&g);
        refine(&g, &mut asg, 3, &KwayOptions::default());
        let after = Partition::new(asg, 3).edge_cut(&g);
        assert!(after <= before, "{after} !<= {before}");
    }
}

//! The paper's graph-weight estimation model (§IV-B.2).
//!
//! * Vertex weight: `Wv = Nb × Ni` with `Ni = g1·x + g2`, where `Nb` is the
//!   subsystem's bus count and `x = f(δt)` the noise level of the time
//!   frame (Expressions (1)–(4));
//! * Edge weight for Step 2: `We = gs(s1) + gs(s2)`, where `gs` counts a
//!   subsystem's boundary and sensitive internal buses (Expression (5));
//!   the Table I *initial* weights use the upper bound `gs = Nb`.
//! * Step 1 needs no communication, so its graph carries uniform edge
//!   weights and the objective is pure load balance.

use crate::graph::WeightedGraph;

/// Per-subsystem inputs of the weight model.
#[derive(Debug, Clone, Copy)]
pub struct SubsystemProfile {
    /// Number of buses `Nb`.
    pub n_buses: usize,
    /// Number of boundary + sensitive internal buses `gs`.
    pub gs: usize,
    /// Iteration-model slope `g1` for this subsystem size.
    pub g1: f64,
    /// Iteration-model intercept `g2`.
    pub g2: f64,
}

impl SubsystemProfile {
    /// Predicted Gauss–Newton iterations at noise level `x` (Expression 2).
    pub fn iterations(&self, x: f64) -> f64 {
        (self.g1 * x + self.g2).max(1.0)
    }

    /// Vertex weight `Wv = Nb·Ni` at noise level `x` (Expression 4).
    pub fn vertex_weight(&self, x: f64) -> f64 {
        self.n_buses as f64 * self.iterations(x)
    }
}

/// Edge weight for Step 2 (Expression 5): measurements exchanged between the
/// two subsystems' boundary/sensitive buses.
pub fn edge_weight(s1: &SubsystemProfile, s2: &SubsystemProfile) -> f64 {
    (s1.gs + s2.gs) as f64
}

/// Builds the Step-1 graph: noise-scaled vertex weights, uniform edge
/// weights (no Step-1 communication — balance is the only objective).
pub fn step1_graph(
    profiles: &[SubsystemProfile],
    edges: &[(usize, usize)],
    noise_level: f64,
) -> WeightedGraph {
    let mut g = WeightedGraph::with_vertex_weights(
        profiles.iter().map(|p| p.vertex_weight(noise_level)).collect(),
    );
    for &(u, v) in edges {
        g.add_edge(u, v, 1.0);
    }
    g
}

/// Builds the Step-2 graph: noise-scaled vertex weights and the
/// communication edge weights of Expression (5).
pub fn step2_graph(
    profiles: &[SubsystemProfile],
    edges: &[(usize, usize)],
    noise_level: f64,
) -> WeightedGraph {
    let mut g = WeightedGraph::with_vertex_weights(
        profiles.iter().map(|p| p.vertex_weight(noise_level)).collect(),
    );
    for &(u, v) in edges {
        g.add_edge(u, v, edge_weight(&profiles[u], &profiles[v]));
    }
    g
}

/// The paper's Table I *initial* graph: `Wv = Nb` and the upper-bound edge
/// weight `We = Nb(s1) + Nb(s2)`.
pub fn initial_graph(bus_counts: &[usize], edges: &[(usize, usize)]) -> WeightedGraph {
    let mut g = WeightedGraph::with_vertex_weights(
        bus_counts.iter().map(|&n| n as f64).collect(),
    );
    for &(u, v) in edges {
        g.add_edge(u, v, (bus_counts[u] + bus_counts[v]) as f64);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE1_BUSES: [usize; 9] = [14, 13, 13, 13, 13, 12, 14, 13, 13];
    const TABLE1_EDGES: [(usize, usize); 12] = [
        (0, 1),
        (0, 3),
        (0, 4),
        (1, 2),
        (1, 5),
        (2, 5),
        (3, 4),
        (3, 6),
        (4, 5),
        (4, 6),
        (4, 7),
        (6, 8),
    ];

    #[test]
    fn initial_graph_reproduces_table1() {
        let g = initial_graph(&TABLE1_BUSES, &TABLE1_EDGES);
        // Vertex weights.
        assert_eq!(g.vertex_weight(0), 14.0);
        assert_eq!(g.vertex_weight(5), 12.0);
        // Edge weights as printed in Table I.
        assert_eq!(g.edge_weight(0, 1), 27.0);
        assert_eq!(g.edge_weight(0, 3), 27.0);
        assert_eq!(g.edge_weight(0, 4), 27.0);
        assert_eq!(g.edge_weight(1, 2), 26.0);
        assert_eq!(g.edge_weight(1, 5), 25.0);
        assert_eq!(g.edge_weight(2, 5), 25.0);
        assert_eq!(g.edge_weight(3, 4), 26.0);
        assert_eq!(g.edge_weight(3, 6), 27.0);
        assert_eq!(g.edge_weight(4, 5), 25.0);
        assert_eq!(g.edge_weight(4, 6), 27.0);
        assert_eq!(g.edge_weight(4, 7), 26.0);
        assert_eq!(g.edge_weight(6, 8), 27.0);
        assert_eq!(g.n_edges(), 12);
    }

    #[test]
    fn paper_14bus_constants_predict_iterations() {
        let p = SubsystemProfile { n_buses: 14, gs: 5, g1: 3.7579, g2: 5.2464 };
        assert!((p.iterations(1.0) - 9.0043).abs() < 1e-3);
        assert!((p.vertex_weight(1.0) - 14.0 * 9.0043).abs() < 0.02);
    }

    #[test]
    fn vertex_weight_grows_with_noise() {
        let p = SubsystemProfile { n_buses: 13, gs: 4, g1: 3.0, g2: 5.0 };
        assert!(p.vertex_weight(2.0) > p.vertex_weight(0.5));
    }

    #[test]
    fn step1_graph_has_uniform_edges() {
        let profiles: Vec<SubsystemProfile> = TABLE1_BUSES
            .iter()
            .map(|&n| SubsystemProfile { n_buses: n, gs: 4, g1: 3.0, g2: 5.0 })
            .collect();
        let g = step1_graph(&profiles, &TABLE1_EDGES, 1.0);
        for (u, v, w) in g.edges() {
            assert_eq!(w, 1.0, "edge ({u},{v})");
        }
    }

    #[test]
    fn step2_graph_uses_gs_sums() {
        let profiles: Vec<SubsystemProfile> = TABLE1_BUSES
            .iter()
            .enumerate()
            .map(|(i, &n)| SubsystemProfile { n_buses: n, gs: 3 + i, g1: 3.0, g2: 5.0 })
            .collect();
        let g = step2_graph(&profiles, &TABLE1_EDGES, 1.0);
        assert_eq!(g.edge_weight(0, 1), (3 + 4) as f64);
        assert_eq!(g.edge_weight(6, 8), (9 + 11) as f64);
    }

    #[test]
    fn iterations_clamp_at_one() {
        let p = SubsystemProfile { n_buses: 10, gs: 2, g1: 1.0, g2: -10.0 };
        assert_eq!(p.iterations(0.5), 1.0);
    }
}

//! Exact partitioning by enumeration — the oracle for tiny graphs.
//!
//! The paper's decomposition graph has 9 vertices and 3 clusters: 3⁹ = 19683
//! assignments, trivially enumerable. The multilevel heuristic is tested
//! against this optimum, and the experiment harness uses it to report how
//! far (if at all) the heuristic lands from optimal.

use crate::graph::WeightedGraph;
use crate::partition::Partition;

/// Exhaustively finds the minimum-edge-cut partition among all assignments
/// whose load-imbalance ratio is at most `imbalance_tol` and which use all
/// `k` parts. Falls back to the minimum-imbalance assignment when no
/// assignment satisfies the tolerance.
///
/// # Panics
/// Panics when the search space `k^n` exceeds ~10⁷ (use the multilevel
/// partitioner instead) or `k == 0`.
pub fn brute_force_optimal(g: &WeightedGraph, k: usize, imbalance_tol: f64) -> Partition {
    assert!(k > 0, "k must be positive");
    let n = g.n();
    let space = (k as f64).powi(n as i32);
    assert!(space <= 1e7, "search space {space:.0} too large for brute force");

    let mut best_feasible: Option<(f64, Vec<usize>)> = None;
    let mut best_balance: Option<(f64, f64, Vec<usize>)> = None;
    let mut assignment = vec![0usize; n];
    loop {
        // Canonical form: fix vertex 0 in part 0 to quotient out part
        // relabelling (safe because metrics are label-invariant).
        if assignment[0] == 0 {
            let p = Partition::new(assignment.clone(), k);
            if p.all_parts_used() {
                let imb = p.imbalance(g);
                let cut = p.edge_cut(g);
                if imb <= imbalance_tol
                    && best_feasible.as_ref().is_none_or(|(c, _)| cut < *c)
                {
                    best_feasible = Some((cut, assignment.clone()));
                }
                let key = (imb, cut);
                if best_balance
                    .as_ref()
                    .is_none_or(|(bi, bc, _)| key < (*bi, *bc))
                {
                    best_balance = Some((imb, cut, assignment.clone()));
                }
            }
        }
        // Odometer increment.
        let mut i = 0usize;
        loop {
            if i == n {
                let winner = best_feasible
                    .map(|(_, a)| a)
                    .or(best_balance.map(|(_, _, a)| a))
                    .expect("at least one complete assignment exists");
                return Partition::new(winner, k);
            }
            assignment[i] += 1;
            if assignment[i] < k {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::{partition_kway, tests::table1_graph, KwayOptions};

    #[test]
    fn finds_obvious_bisection() {
        let mut g = WeightedGraph::new(6);
        for c in [0usize, 3] {
            g.add_edge(c, c + 1, 10.0);
            g.add_edge(c + 1, c + 2, 10.0);
            g.add_edge(c, c + 2, 10.0);
        }
        g.add_edge(2, 3, 1.0);
        let p = brute_force_optimal(&g, 2, 1.05);
        assert_eq!(p.edge_cut(&g), 1.0);
        assert!((p.imbalance(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table1_optimum_is_balanced_3_3_3() {
        let g = table1_graph();
        let p = brute_force_optimal(&g, 3, 1.05);
        for part in 0..3 {
            assert_eq!(p.part(part).len(), 3);
        }
        assert!(p.imbalance(&g) <= 1.05);
    }

    #[test]
    fn heuristic_matches_oracle_on_table1() {
        let g = table1_graph();
        let oracle = brute_force_optimal(&g, 3, 1.05);
        let heur = partition_kway(&g, 3, &KwayOptions::default());
        // The heuristic must be within 25% of the optimal cut at this scale
        // (it typically matches exactly; the slack keeps the test robust to
        // tie-breaking).
        assert!(
            heur.edge_cut(&g) <= 1.25 * oracle.edge_cut(&g),
            "heuristic {} vs oracle {}",
            heur.edge_cut(&g),
            oracle.edge_cut(&g)
        );
    }

    #[test]
    fn infeasible_tolerance_falls_back_to_best_balance() {
        let g = WeightedGraph::with_vertex_weights(vec![10.0, 1.0, 1.0]);
        // No 2-way split of {10,1,1} has imbalance ≤ 1.05; fall back.
        let p = brute_force_optimal(&g, 2, 1.05);
        assert!(p.all_parts_used());
        // Best possible: {10} vs {1,1} → max 10 / avg 6 = 1.666…
        assert!((p.imbalance(&g) - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_huge_search_space() {
        let g = WeightedGraph::new(30);
        brute_force_optimal(&g, 4, 1.05);
    }
}

//! Property tests on the partitioner and repartitioner.

use proptest::prelude::*;

use pgse_partition::kway::KwayOptions;
use pgse_partition::repartition::{repartition, RepartitionOptions};
use pgse_partition::{partition_kway, WeightedGraph};

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..30).prop_flat_map(|n| {
        let weights = proptest::collection::vec(1.0f64..25.0, n);
        let extras = proptest::collection::vec((0..n, 0..n, 0.5f64..4.0), 0..2 * n);
        (weights, extras).prop_map(move |(w, extras)| {
            let mut g = WeightedGraph::with_vertex_weights(w);
            for v in 1..n {
                g.add_edge(v - 1, v, 1.0);
            }
            for (u, v, ew) in extras {
                if u != v {
                    g.add_edge(u, v, ew);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn migrations_under_stable_weights_pay_for_themselves(g in arb_graph(), k in 2usize..5) {
        // With unchanged weights the repartitioner may still move vertices,
        // but only when the cut improvement beats the migration penalty:
        // the penalized objective must never get worse.
        prop_assume!(k <= g.n());
        let p = partition_kway(&g, k, &KwayOptions::default());
        let opts = RepartitionOptions::default();
        let q = repartition(&g, &p, &opts);
        let objective = |part: &pgse_partition::Partition| {
            part.edge_cut(&g) + opts.migration_penalty * part.migration(&p) as f64
        };
        prop_assert!(
            objective(&q) <= objective(&p) + 1e-9,
            "objective worsened: {} -> {} (migration {})",
            objective(&p),
            objective(&q),
            q.migration(&p)
        );
    }

    #[test]
    fn repartition_never_leaves_a_cluster_empty(g in arb_graph(), k in 2usize..5,
                                                heavy in 0usize..4) {
        prop_assume!(k <= g.n());
        let p = partition_kway(&g, k, &KwayOptions::default());
        let mut g2 = g.clone();
        let v = heavy % g.n();
        g2.set_vertex_weight(v, 200.0); // dramatic weight shift
        let q = repartition(&g2, &p, &RepartitionOptions::default());
        prop_assert!(q.all_parts_used());
        prop_assert_eq!(q.assignment.len(), g.n());
    }

    #[test]
    fn repartition_improves_or_holds_balance_when_overloaded(
        g in arb_graph(), k in 2usize..4, heavy in 0usize..8) {
        prop_assume!(k <= g.n());
        let p = partition_kway(&g, k, &KwayOptions::default());
        let mut g2 = g.clone();
        g2.set_vertex_weight(heavy % g.n(), 150.0);
        let before = p.imbalance(&g2);
        let q = repartition(&g2, &p, &RepartitionOptions::default());
        // The adaptive pass may trade a little balance for cut only within
        // tolerance; when the start is overloaded it must not get worse.
        if before > 1.10 {
            prop_assert!(q.imbalance(&g2) <= before + 1e-9,
                         "balance worsened: {} -> {}", before, q.imbalance(&g2));
        }
    }

    #[test]
    fn infinite_penalty_freezes_the_mapping(g in arb_graph(), k in 2usize..5) {
        prop_assume!(k <= g.n());
        let p = partition_kway(&g, k, &KwayOptions::default());
        let frozen = repartition(
            &g,
            &p,
            &RepartitionOptions { migration_penalty: f64::MAX / 4.0, imbalance_tol: 1e9,
                                  passes: 4 },
        );
        prop_assert_eq!(frozen.migration(&p), 0);
    }

    #[test]
    fn part_loads_sum_to_total(g in arb_graph(), k in 1usize..5) {
        prop_assume!(k <= g.n());
        let p = partition_kway(&g, k, &KwayOptions::default());
        let loads = p.part_loads(&g);
        let sum: f64 = loads.iter().sum();
        prop_assert!((sum - g.total_weight()).abs() < 1e-9);
        // Edge cut is at most the total edge weight.
        let total_edges: f64 = g.edges().iter().map(|&(_, _, w)| w).sum();
        prop_assert!(p.edge_cut(&g) <= total_edges + 1e-9);
    }

    #[test]
    fn seeds_are_deterministic(g in arb_graph(), k in 2usize..4, seed in 0u64..50) {
        prop_assume!(k <= g.n());
        let opts = KwayOptions { seed, ..KwayOptions::default() };
        let a = partition_kway(&g, k, &opts);
        let b = partition_kway(&g, k, &opts);
        prop_assert_eq!(a, b);
    }
}

//! Property tests for the metrics algebra.
//!
//! Pins the invariants the pipeline's aggregation relies on: snapshot
//! merge is associative and commutative (so folding per-area/per-thread
//! snapshots is order-independent), histogram bucket counts are monotone
//! under observation, and quantile estimates respect bucket bounds.
//!
//! Observations are integer-valued (`u8 as f64`) so floating-point sums
//! are exact and the associativity assertions compare equal bit-for-bit.

use pgse_obs::{Histogram, MetricsSnapshot};
use proptest::prelude::*;

const NAMES: [&str; 3] = ["pcg.iterations", "exchange.bytes", "volatile.relay"];

/// Interprets a byte script as a sequence of metric operations. Chunks of
/// three bytes: (op kind, metric name, integer value).
fn build(script: &[u8]) -> MetricsSnapshot {
    let mut m = MetricsSnapshot::new();
    for ch in script.chunks_exact(3) {
        let name = NAMES[(ch[1] % NAMES.len() as u8) as usize];
        match ch[0] % 3 {
            0 => m.counter_add(name, u64::from(ch[2])),
            1 => m.gauge_set(name, f64::from(ch[2])),
            _ => m.observe(name, f64::from(ch[2])),
        }
    }
    m
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_associative(
        a in collection::vec(any::<u8>(), 0..60),
        b in collection::vec(any::<u8>(), 0..60),
        c in collection::vec(any::<u8>(), 0..60),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative(
        a in collection::vec(any::<u8>(), 0..60),
        b in collection::vec(any::<u8>(), 0..60),
    ) {
        let (a, b) = (build(&a), build(&b));
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_with_empty_is_identity(a in collection::vec(any::<u8>(), 0..60)) {
        let a = build(&a);
        prop_assert_eq!(merged(&a, &MetricsSnapshot::new()), a.clone());
        prop_assert_eq!(merged(&MetricsSnapshot::new(), &a), a);
    }

    #[test]
    fn bucket_counts_never_decrease(values in collection::vec(any::<u8>(), 1..80)) {
        // Bounds chosen so u8 observations also exercise the overflow slot.
        let mut h = Histogram::new(&[4.0, 16.0, 64.0]);
        for &v in &values {
            let before = h.counts().to_vec();
            let count_before = h.count;
            h.observe(f64::from(v));
            for (now, was) in h.counts().iter().zip(&before) {
                prop_assert!(now >= was);
            }
            prop_assert_eq!(h.count, count_before + 1);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), h.count);
        }
    }

    #[test]
    fn quantile_estimates_respect_bucket_bounds(
        values in collection::vec(any::<u8>(), 1..80),
        qs in collection::vec(0.01f64..1.0, 1..6),
    ) {
        let mut h = Histogram::new(&[4.0, 16.0, 64.0]);
        let mut sorted: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
        for &v in &sorted {
            h.observe(v);
        }
        sorted.sort_by(f64::total_cmp);
        for &q in &qs {
            let est = h.quantile(q).unwrap();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            // The estimate never undershoots the true quantile, and it is
            // exactly the upper bound of the true quantile's bucket (the
            // observed max for the overflow bucket).
            prop_assert!(est >= truth);
            let bucket = h.bucket_index(truth);
            if bucket < h.bounds().len() {
                prop_assert_eq!(est, h.bounds()[bucket]);
            } else {
                prop_assert_eq!(est, h.max);
            }
        }
    }
}

//! Structured span tracing with a deterministic in-memory collector.
//!
//! A [`Recorder`] collects the spans and metrics of **one sequential
//! activity** — one area, one frame loop, one benchmark run. Span order is
//! a per-recorder logical sequence number (`seq`), not wall-clock, so two
//! runs of the same seeded workload produce identical traces; wall-clock
//! durations ride along for the timing reports but are excluded from the
//! deterministic export.
//!
//! Determinism rule: never share one recorder between threads that run
//! concurrently — give each concurrent activity its own recorder and merge
//! the snapshots (scopes with the same name merge canonically in
//! [`crate::ObsReport::from_scopes`]). The recorder is `Sync` so a scoped
//! thread *can* use one, but interleaved `seq` assignment would then
//! depend on scheduling.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::MetricsSnapshot;
use crate::report::ScopeReport;

/// A span/field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The unsigned value, when this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, when this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (see the taxonomy in DESIGN.md §8).
    pub name: String,
    /// Per-recorder open-order sequence number (the logical clock).
    pub seq: u64,
    /// `seq` of the enclosing span, when opened inside one.
    pub parent: Option<u64>,
    /// Nesting depth (0 = root).
    pub depth: u32,
    /// Caller-supplied logical timestamp (frame / round / iteration index).
    pub logical: Option<u64>,
    /// Wall-clock duration in nanoseconds (excluded from the deterministic
    /// export).
    pub wall_nanos: u64,
    /// Attached fields, in record order.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up an unsigned field by key.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(FieldValue::as_u64)
    }

    /// Looks up a boolean field by key.
    pub fn field_bool(&self, key: &str) -> Option<bool> {
        match self.field(key) {
            Some(FieldValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a string field by key.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        match self.field(key) {
            Some(FieldValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

#[derive(Debug, Default)]
struct RecorderState {
    next_seq: u64,
    spans: Vec<SpanRecord>,
    metrics: MetricsSnapshot,
}

/// The in-memory collector for one scope (see module docs).
#[derive(Debug, Clone)]
pub struct Recorder {
    scope: Arc<str>,
    state: Arc<Mutex<RecorderState>>,
}

impl Recorder {
    /// A fresh recorder for the named scope.
    pub fn new(scope: &str) -> Self {
        Recorder { scope: Arc::from(scope), state: Arc::default() }
    }

    /// The scope name.
    pub fn scope(&self) -> &str {
        &self.scope
    }

    /// Adds `v` to a counter.
    pub fn counter_add(&self, name: &str, v: u64) {
        self.state.lock().expect("recorder poisoned").metrics.counter_add(name, v);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.state.lock().expect("recorder poisoned").metrics.gauge_set(name, v);
    }

    /// Records a histogram observation (default buckets).
    pub fn observe(&self, name: &str, v: f64) {
        self.state.lock().expect("recorder poisoned").metrics.observe(name, v);
    }

    /// Opens a root span directly on this recorder (no TLS parenting; use
    /// [`crate::span`] inside [`crate::with_recorder`] for nested spans).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.open(name, None, None, 0, false)
    }

    /// [`Recorder::span`] with a logical timestamp.
    pub fn span_at(&self, name: &str, logical: u64) -> SpanGuard {
        self.open(name, Some(logical), None, 0, false)
    }

    pub(crate) fn open(
        &self,
        name: &str,
        logical: Option<u64>,
        parent: Option<u64>,
        depth: u32,
        tls: bool,
    ) -> SpanGuard {
        let seq = {
            let mut st = self.state.lock().expect("recorder poisoned");
            let s = st.next_seq;
            st.next_seq += 1;
            s
        };
        SpanGuard(Some(OpenSpan {
            rec: self.clone(),
            name: name.to_string(),
            seq,
            parent,
            depth,
            logical,
            fields: Vec::new(),
            start: Instant::now(),
            tls,
        }))
    }

    /// Snapshot of everything recorded so far, spans sorted by `seq`.
    pub fn snapshot(&self) -> ScopeReport {
        let st = self.state.lock().expect("recorder poisoned");
        let mut spans = st.spans.clone();
        spans.sort_by_key(|s| s.seq);
        ScopeReport { scope: self.scope.to_string(), metrics: st.metrics.clone(), spans }
    }

    fn finish(&self, record: SpanRecord) {
        self.state.lock().expect("recorder poisoned").spans.push(record);
    }
}

struct OpenSpan {
    rec: Recorder,
    name: String,
    seq: u64,
    parent: Option<u64>,
    depth: u32,
    logical: Option<u64>,
    fields: Vec<(String, FieldValue)>,
    start: Instant,
    tls: bool,
}

/// An open span; records itself on drop. Inert when tracing is off.
pub struct SpanGuard(Option<OpenSpan>);

impl SpanGuard {
    /// The inert guard handed out when no recorder is installed.
    pub(crate) fn noop() -> Self {
        SpanGuard(None)
    }

    /// Attaches a field to the span.
    pub fn record(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(open) = &mut self.0 {
            open.fields.push((key.to_string(), value.into()));
        }
    }

    /// This span's sequence number (None when inert).
    pub fn seq(&self) -> Option<u64> {
        self.0.as_ref().map(|o| o.seq)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            let record = SpanRecord {
                name: open.name,
                seq: open.seq,
                parent: open.parent,
                depth: open.depth,
                logical: open.logical,
                wall_nanos: open.start.elapsed().as_nanos() as u64,
                fields: open.fields,
            };
            if open.tls {
                crate::pop_open(record.seq);
            }
            open.rec.finish(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_sequenced_in_open_order() {
        let rec = Recorder::new("t");
        {
            let _a = rec.span("outer");
            let _b = rec.span_at("inner", 7);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[0].seq, 0);
        assert_eq!(snap.spans[1].name, "inner");
        assert_eq!(snap.spans[1].seq, 1);
        assert_eq!(snap.spans[1].logical, Some(7));
    }

    #[test]
    fn fields_attach_and_read_back() {
        let rec = Recorder::new("t");
        {
            let mut sp = rec.span("s");
            sp.record("n", 3u64);
            sp.record("ok", true);
            sp.record("tag", "x");
        }
        let sp = &rec.snapshot().spans[0];
        assert_eq!(sp.field_u64("n"), Some(3));
        assert_eq!(sp.field("ok"), Some(&FieldValue::Bool(true)));
        assert_eq!(sp.field("tag").and_then(FieldValue::as_str), Some("x"));
        assert_eq!(sp.field("absent"), None);
    }
}

//! # pgse-obs — pipeline-wide deterministic observability.
//!
//! The measurement substrate of the prototype: every layer (PCG, WLS, the
//! DSE runner, the middleware, the cluster interface, the per-frame
//! orchestrator) records **spans** and **metrics** here instead of keeping
//! ad-hoc timers. The design goals, in order:
//!
//! 1. **Deterministic.** Traces order by per-recorder logical sequence
//!    numbers and carry logical timestamps (frame / round / iteration
//!    indices); wall-clock rides along but is excluded from the
//!    deterministic export. The same seeded workload yields byte-identical
//!    [`ObsReport::to_json_deterministic`] output — tests assert on traces
//!    without flaking.
//! 2. **Mergeable.** Each concurrent activity records into its own
//!    [`Recorder`]; snapshots combine associatively + commutatively
//!    ([`MetricsSnapshot::merge`], [`ObsReport::from_scopes`]), so
//!    per-area/per-thread collection needs no cross-thread coordination —
//!    the "lock-free-ish" property: contention-free by construction, with
//!    only an uncontended per-recorder mutex underneath.
//! 3. **Zero-cost when off.** Instrumented code calls the free functions
//!    ([`span`], [`counter_add`], …); without an installed recorder they
//!    are no-ops, so library crates stay instrumentation-free to callers
//!    that don't observe.
//!
//! ## Usage
//!
//! ```
//! use pgse_obs as obs;
//!
//! let rec = obs::Recorder::new("area0");
//! let report = obs::with_recorder(&rec, || {
//!     let mut sp = obs::span_at("area.step1", 1);
//!     obs::counter_add("pcg.iterations", 12);
//!     sp.record("gn_iterations", 3u64);
//!     drop(sp);
//!     obs::ObsReport::from_scopes(vec![rec.snapshot()])
//! });
//! assert_eq!(report.counter("area0", "pcg.iterations"), 12);
//! ```

use std::cell::RefCell;

pub mod metrics;
pub mod report;
pub mod trace;

pub use metrics::{Gauge, Histogram, MetricsSnapshot, DEFAULT_BUCKETS, VOLATILE_PREFIX};
pub use report::{ObsReport, ScopeReport, StageStat};
pub use trace::{FieldValue, Recorder, SpanGuard, SpanRecord};

thread_local! {
    /// The thread's installed recorder, if any.
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    /// `seq`s of the spans currently open via the TLS entry points, in
    /// nesting order (for parent/depth assignment).
    static OPEN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Installs `rec` as this thread's recorder for the duration of `f`. The
/// previous recorder (and its open-span nesting) is restored afterwards,
/// panics included.
pub fn with_recorder<R>(rec: &Recorder, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev: Option<Recorder>,
        prev_open: Vec<u64>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
            OPEN.with(|o| *o.borrow_mut() = std::mem::take(&mut self.prev_open));
        }
    }
    let _restore = Restore {
        prev: CURRENT.with(|c| c.borrow_mut().replace(rec.clone())),
        prev_open: OPEN.with(|o| std::mem::take(&mut *o.borrow_mut())),
    };
    f()
}

/// This thread's installed recorder, if any.
pub fn current() -> Option<Recorder> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Opens a span on the installed recorder, parented to the innermost open
/// TLS span. Inert (and free) when no recorder is installed.
pub fn span(name: &str) -> SpanGuard {
    open(name, None)
}

/// [`span`] with a logical timestamp (frame / round / iteration index).
pub fn span_at(name: &str, logical: u64) -> SpanGuard {
    open(name, Some(logical))
}

fn open(name: &str, logical: Option<u64>) -> SpanGuard {
    match current() {
        Some(rec) => OPEN.with(|o| {
            let mut o = o.borrow_mut();
            let parent = o.last().copied();
            let guard = rec.open(name, logical, parent, o.len() as u32, true);
            o.push(guard.seq().expect("live recorder span has a seq"));
            guard
        }),
        None => SpanGuard::noop(),
    }
}

/// Pops `seq` from the TLS open-span stack (called by the guard's drop).
pub(crate) fn pop_open(seq: u64) {
    OPEN.with(|o| {
        let mut o = o.borrow_mut();
        if o.last() == Some(&seq) {
            o.pop();
        } else {
            // Out-of-order drop (guard moved out of its scope): remove
            // just this entry so siblings keep a sane parent chain.
            o.retain(|&s| s != seq);
        }
    });
}

/// Adds `v` to a counter on the installed recorder (no-op when none).
pub fn counter_add(name: &str, v: u64) {
    if let Some(rec) = current() {
        rec.counter_add(name, v);
    }
}

/// Sets a gauge on the installed recorder (no-op when none).
pub fn gauge_set(name: &str, v: f64) {
    if let Some(rec) = current() {
        rec.gauge_set(name, v);
    }
}

/// Records a histogram observation on the installed recorder (no-op when
/// none).
pub fn observe(name: &str, v: f64) {
    if let Some(rec) = current() {
        rec.observe(name, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_noops_without_a_recorder() {
        let mut sp = span("orphan");
        sp.record("x", 1u64);
        assert_eq!(sp.seq(), None);
        counter_add("c", 1);
        gauge_set("g", 1.0);
        observe("h", 1.0);
        assert!(current().is_none());
    }

    #[test]
    fn tls_spans_nest_with_parents_and_depth() {
        let rec = Recorder::new("t");
        with_recorder(&rec, || {
            let outer = span("outer");
            let outer_seq = outer.seq().unwrap();
            {
                let inner = span_at("inner", 3);
                assert_eq!(inner.seq(), Some(1));
            }
            let sibling = span("sibling");
            assert!(sibling.seq().unwrap() > outer_seq);
        });
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 3);
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(0));
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.logical, Some(3));
        let sibling = snap.spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(sibling.parent, Some(0));
    }

    #[test]
    fn with_recorder_restores_the_previous_recorder() {
        let a = Recorder::new("a");
        let b = Recorder::new("b");
        with_recorder(&a, || {
            counter_add("c", 1);
            with_recorder(&b, || counter_add("c", 10));
            counter_add("c", 1);
        });
        assert!(current().is_none());
        assert_eq!(a.snapshot().metrics.counter("c"), 2);
        assert_eq!(b.snapshot().metrics.counter("c"), 10);
    }

    #[test]
    fn same_workload_same_logical_trace() {
        let run = || {
            let rec = Recorder::new("w");
            with_recorder(&rec, || {
                for i in 0..3u64 {
                    let mut sp = span_at("iter", i);
                    sp.record("i", i);
                    counter_add("iters", 1);
                }
            });
            ObsReport::from_scopes(vec![rec.snapshot()]).to_json_deterministic()
        };
        assert_eq!(run(), run());
    }
}

//! Mergeable metrics: counters, gauges and fixed-bucket histograms.
//!
//! A [`MetricsSnapshot`] is the value type everything else builds on: each
//! per-area/per-thread recorder owns one, and snapshots combine with
//! [`MetricsSnapshot::merge`], which is **associative and commutative** —
//! folding N per-worker snapshots yields the same totals regardless of
//! grouping or order (the property `crates/obs/tests/props.rs` pins).
//!
//! Metric names starting with [`VOLATILE_PREFIX`] mark quantities that are
//! *not* reproducible run-to-run (e.g. relay counters that trail delivery
//! by a few frames); the deterministic JSON export drops them.

use std::collections::BTreeMap;

/// Prefix marking metrics whose value may differ between two runs of the
/// same seed (timing races, trailing counters). They are kept in the full
/// [`crate::ObsReport::to_json`] export but excluded from
/// [`crate::ObsReport::to_json_deterministic`].
pub const VOLATILE_PREFIX: &str = "volatile.";

/// Default histogram bucket upper bounds — tuned for iteration counts and
/// other small-cardinality pipeline quantities.
pub const DEFAULT_BUCKETS: &[f64] =
    &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0];

/// A last-writer-wins gauge. Merging keeps the value with the most
/// updates (ties broken by the larger value), which makes the merge a
/// max under a total order — associative and commutative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Gauge {
    /// Last value set.
    pub value: f64,
    /// How many times the gauge was set.
    pub updates: u64,
}

impl Gauge {
    fn dominates(&self, other: &Gauge) -> bool {
        self.updates > other.updates
            || (self.updates == other.updates && self.value.total_cmp(&other.value).is_gt())
    }
}

/// A fixed-bucket histogram: `counts[i]` counts observations `v` with
/// `bounds[i-1] < v <= bounds[i]`; the final slot is the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+inf` while empty).
    pub min: f64,
    /// Largest observation (`-inf` while empty).
    pub max: f64,
}

impl Histogram {
    /// A histogram over the given strictly increasing upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Index of the bucket `v` falls into.
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len())
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self.bucket_index(v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Both histograms must share bounds (all
    /// same-named histograms in this workspace do).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram merge: bound mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper-bound estimate of the `q`-quantile (`0 < q <= 1`): the upper
    /// bound of the bucket containing the ⌈q·count⌉-th observation (for
    /// the overflow bucket, the observed maximum). `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(if i < self.bounds.len() { self.bounds[i] } else { self.max });
            }
        }
        Some(self.max)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(DEFAULT_BUCKETS)
    }
}

/// A mergeable snapshot of one recorder's metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters, summed on merge.
    pub counters: BTreeMap<String, u64>,
    /// Gauges; merge keeps the most-updated value.
    pub gauges: BTreeMap<String, Gauge>,
    /// Histograms; merge adds bucket counts elementwise.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `v` to the named counter.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Current value of the named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_string()).or_default();
        g.value = v;
        g.updates += 1;
    }

    /// Records an observation into the named histogram (default buckets).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Records an observation into the named histogram with explicit
    /// bucket bounds (used on first touch; later observations reuse them).
    pub fn observe_with(&mut self, name: &str, v: f64, bounds: &[f64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Folds `other` into `self` (associative and commutative; see module
    /// docs).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, g) in &other.gauges {
            match self.gauges.get_mut(k) {
                Some(mine) if mine.dominates(g) => {}
                Some(mine) => *mine = *g,
                None => {
                    self.gauges.insert(k.clone(), *g);
                }
            }
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_on_merge() {
        let mut a = MetricsSnapshot::new();
        a.counter_add("x", 2);
        let mut b = MetricsSnapshot::new();
        b.counter_add("x", 3);
        b.counter_add("y", 1);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.counter("absent"), 0);
    }

    #[test]
    fn gauge_merge_keeps_most_updated() {
        let mut a = MetricsSnapshot::new();
        a.gauge_set("g", 1.0);
        a.gauge_set("g", 2.0);
        let mut b = MetricsSnapshot::new();
        b.gauge_set("g", 99.0);
        a.merge(&b);
        assert_eq!(a.gauges["g"].value, 2.0);
        assert_eq!(a.gauges["g"].updates, 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        assert_eq!(h.quantile(0.5), None);
        for v in [0.5, 3.0, 4.0, 50.0, 1e6] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1e6);
        // rank 3 of 5 lands in the (1, 10] bucket.
        assert_eq!(h.quantile(0.5), Some(10.0));
        // The top observation sits in the overflow bucket → observed max.
        assert_eq!(h.quantile(1.0), Some(1e6));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        a.observe(0.5);
        let mut b = Histogram::new(&[1.0, 10.0]);
        b.observe(5.0);
        b.observe(20.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count, 3);
    }
}

//! JSON export: the [`ObsReport`].
//!
//! An `ObsReport` is the merged view over every recorder's
//! [`ScopeReport`], sorted canonically by scope name. Two exports exist:
//!
//! * [`ObsReport::to_json`] — everything, wall-clock durations included;
//!   the per-stage breakdown the bench harness emits.
//! * [`ObsReport::to_json_deterministic`] — the logical-clock trace only:
//!   wall-clock durations, gauges, `volatile.*` metrics and `wall_*` span
//!   fields are dropped, so two runs of the same seed produce
//!   **byte-identical** output (a tested invariant).

use std::collections::BTreeMap;

use serde::Content;

use crate::metrics::{MetricsSnapshot, VOLATILE_PREFIX};
use crate::trace::{FieldValue, SpanRecord};

/// Everything one recorder collected.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeReport {
    /// Scope name (e.g. `frame`, `area3`).
    pub scope: String,
    /// The scope's metrics.
    pub metrics: MetricsSnapshot,
    /// Completed spans in `seq` order.
    pub spans: Vec<SpanRecord>,
}

/// Aggregate of all spans sharing a name (a pipeline stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageStat {
    /// Number of spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub wall_nanos: u128,
}

/// The merged observability report (see module docs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Scope reports, sorted by scope name.
    pub scopes: Vec<ScopeReport>,
}

impl ObsReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the canonical report: scopes sorted by name, same-named
    /// scopes merged (metrics folded, spans concatenated in input order).
    pub fn from_scopes(scopes: Vec<ScopeReport>) -> Self {
        let mut merged: Vec<ScopeReport> = Vec::new();
        for s in scopes {
            match merged.iter_mut().find(|m| m.scope == s.scope) {
                Some(m) => {
                    m.metrics.merge(&s.metrics);
                    m.spans.extend(s.spans);
                }
                None => merged.push(s),
            }
        }
        merged.sort_by(|a, b| a.scope.cmp(&b.scope));
        ObsReport { scopes: merged }
    }

    /// The named scope, when present.
    pub fn scope(&self, name: &str) -> Option<&ScopeReport> {
        self.scopes.iter().find(|s| s.scope == name)
    }

    /// A counter inside one scope (0 when absent).
    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        self.scope(scope).map_or(0, |s| s.metrics.counter(name))
    }

    /// A counter summed across every scope.
    pub fn total_counter(&self, name: &str) -> u64 {
        self.scopes.iter().map(|s| s.metrics.counter(name)).sum()
    }

    /// Every span with the given name, as `(scope, span)` pairs in scope
    /// order.
    pub fn spans_named<'a>(&'a self, name: &str) -> Vec<(&'a str, &'a SpanRecord)> {
        self.scopes
            .iter()
            .flat_map(|s| {
                s.spans
                    .iter()
                    .filter(|sp| sp.name == name)
                    .map(move |sp| (s.scope.as_str(), sp))
            })
            .collect()
    }

    /// Per-stage aggregation: span name → count + total wall time. This is
    /// the "where does a cycle spend its time" table.
    pub fn stage_totals(&self) -> BTreeMap<String, StageStat> {
        let mut out: BTreeMap<String, StageStat> = BTreeMap::new();
        for s in &self.scopes {
            for sp in &s.spans {
                let st = out.entry(sp.name.clone()).or_default();
                st.count += 1;
                st.wall_nanos += u128::from(sp.wall_nanos);
            }
        }
        out
    }

    /// Pretty JSON with wall-clock timings — the bench/report export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&Doc(self.to_content(false)))
            .expect("obs report serializes")
    }

    /// Pretty JSON of the deterministic (logical-clock) trace only — two
    /// runs of the same seed produce byte-identical output.
    pub fn to_json_deterministic(&self) -> String {
        serde_json::to_string_pretty(&Doc(self.to_content(true)))
            .expect("obs report serializes")
    }

    fn to_content(&self, deterministic: bool) -> Content {
        let scopes = self
            .scopes
            .iter()
            .map(|s| scope_content(s, deterministic))
            .collect::<Vec<_>>();
        Content::Map(vec![("scopes".into(), Content::Seq(scopes))])
    }
}

/// `Content` pass-through so the serde_json shim can print a hand-built
/// tree (the derive shim cannot express this document's nested maps).
struct Doc(Content);

impl serde::Serialize for Doc {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

fn scope_content(s: &ScopeReport, det: bool) -> Content {
    let keep = |name: &str| !det || !name.starts_with(VOLATILE_PREFIX);
    let counters = s
        .metrics
        .counters
        .iter()
        .filter(|(k, _)| keep(k))
        .map(|(k, v)| (k.clone(), Content::U64(*v)))
        .collect();
    let histograms = s
        .metrics
        .histograms
        .iter()
        .filter(|(k, _)| keep(k))
        .map(|(k, h)| {
            (
                k.clone(),
                Content::Map(vec![
                    (
                        "bounds".into(),
                        Content::Seq(h.bounds().iter().map(|&b| Content::F64(b)).collect()),
                    ),
                    (
                        "counts".into(),
                        Content::Seq(h.counts().iter().map(|&c| Content::U64(c)).collect()),
                    ),
                    ("count".into(), Content::U64(h.count)),
                    ("sum".into(), Content::F64(h.sum)),
                ]),
            )
        })
        .collect();
    let mut map = vec![
        ("scope".into(), Content::Str(s.scope.clone())),
        ("counters".into(), Content::Map(counters)),
        ("histograms".into(), Content::Map(histograms)),
    ];
    if !det {
        let gauges = s
            .metrics
            .gauges
            .iter()
            .map(|(k, g)| {
                (
                    k.clone(),
                    Content::Map(vec![
                        ("value".into(), Content::F64(g.value)),
                        ("updates".into(), Content::U64(g.updates)),
                    ]),
                )
            })
            .collect();
        map.push(("gauges".into(), Content::Map(gauges)));
    }
    map.push((
        "spans".into(),
        Content::Seq(s.spans.iter().map(|sp| span_content(sp, det)).collect()),
    ));
    Content::Map(map)
}

fn span_content(sp: &SpanRecord, det: bool) -> Content {
    let mut map = vec![
        ("seq".into(), Content::U64(sp.seq)),
        ("name".into(), Content::Str(sp.name.clone())),
        (
            "parent".into(),
            sp.parent.map_or(Content::Null, Content::U64),
        ),
        ("depth".into(), Content::U64(u64::from(sp.depth))),
        (
            "logical".into(),
            sp.logical.map_or(Content::Null, Content::U64),
        ),
    ];
    if !det {
        map.push(("wall_nanos".into(), Content::U64(sp.wall_nanos)));
    }
    let fields = sp
        .fields
        .iter()
        .filter(|(k, _)| !det || !(k.starts_with("wall_") || k.starts_with(VOLATILE_PREFIX)))
        .map(|(k, v)| (k.clone(), field_content(v)))
        .collect::<Vec<_>>();
    if !fields.is_empty() {
        map.push(("fields".into(), Content::Map(fields)));
    }
    Content::Map(map)
}

fn field_content(v: &FieldValue) -> Content {
    match v {
        FieldValue::U64(x) => Content::U64(*x),
        FieldValue::I64(x) => Content::I64(*x),
        FieldValue::F64(x) => Content::F64(*x),
        FieldValue::Bool(x) => Content::Bool(*x),
        FieldValue::Str(x) => Content::Str(x.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> ObsReport {
        let a = Recorder::new("area1");
        {
            let mut sp = a.span_at("area.step1", 1);
            sp.record("gn_iterations", 4u64);
        }
        a.counter_add("pcg.iterations", 17);
        a.counter_add("volatile.relay.frames", 3);
        a.gauge_set("noise", 0.8);
        let b = Recorder::new("frame");
        b.counter_add("mw.send.ok", 2);
        ObsReport::from_scopes(vec![a.snapshot(), b.snapshot()])
    }

    #[test]
    fn scopes_sort_and_query() {
        let r = sample();
        assert_eq!(r.scopes[0].scope, "area1");
        assert_eq!(r.scopes[1].scope, "frame");
        assert_eq!(r.counter("area1", "pcg.iterations"), 17);
        assert_eq!(r.total_counter("pcg.iterations"), 17);
        let spans = r.spans_named("area.step1");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].0, "area1");
        assert_eq!(spans[0].1.field_u64("gn_iterations"), Some(4));
        assert_eq!(r.stage_totals()["area.step1"].count, 1);
    }

    #[test]
    fn same_scope_merges() {
        let a = Recorder::new("x");
        a.counter_add("c", 1);
        let b = Recorder::new("x");
        b.counter_add("c", 2);
        let r = ObsReport::from_scopes(vec![a.snapshot(), b.snapshot()]);
        assert_eq!(r.scopes.len(), 1);
        assert_eq!(r.counter("x", "c"), 3);
    }

    #[test]
    fn deterministic_export_drops_volatile_and_wall() {
        let r = sample();
        let full = r.to_json();
        let det = r.to_json_deterministic();
        assert!(full.contains("wall_nanos"));
        assert!(full.contains("volatile.relay.frames"));
        assert!(full.contains("gauges"));
        assert!(!det.contains("wall_nanos"));
        assert!(!det.contains("volatile.relay.frames"));
        assert!(!det.contains("gauges"));
        assert!(det.contains("pcg.iterations"));
        assert!(det.contains("area.step1"));
    }
}

//! The broadcast multiplexer: one encode per filter class, fanned out to
//! every subscriber through bounded latest-wins queues.
//!
//! The cost model is the whole point: with N subscribers behind A
//! distinct `(filter, full-or-delta)` classes, a publish performs **at
//! most 2·A encodes** (full + delta per class) and N queue pushes of
//! shared [`Arc`] buffers — encode work is O(areas), not O(N). The
//! encode fan-out runs through `rayon`, and because every buffer is a
//! pure function of `(base, next, filter)` the result — and every
//! counter — is identical on 1, 2, or 8-thread pools.
//!
//! Every publish *offers* exactly one queue entry to every live
//! subscriber, and every offered entry reaches exactly one terminal
//! state, which is the accounting identity the serve tests close:
//!
//! ```text
//! published == delivered + shed + coalesced
//! ```
//!
//! * **delivered** — popped by the reader (reactor write completed, or an
//!   in-process subscription consumed it);
//! * **coalesced** — superseded while still queued: a slow reader's full
//!   queue is collapsed to the newest epoch (latest-wins). The collapse
//!   replaces the whole backlog with one *full* view — dropping an
//!   individual delta would break the reader's delta chain;
//! * **shed** — pending (or mid-write) when the subscriber died,
//!   disconnected, or the server shut down.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use pgse_obs::Recorder;
use pgse_stream::SystemSnapshot;
use rayon::prelude::*;

use crate::wire::{self, DeliveryMode, SubscriptionFilter};

/// One distinct encode per publish: `(filter, delta?)`.
type EncodeClass = (SubscriptionFilter, bool);

/// Global bus ids per decomposition area — how the multiplexer resolves
/// [`SubscriptionFilter::Area`] without depending on the solver's
/// decomposition types.
#[derive(Debug, Clone)]
pub struct AreaMap {
    areas: Vec<Vec<u32>>,
    n_buses: u32,
}

impl AreaMap {
    /// Builds the map from per-area global bus-id lists (sorted
    /// internally). Every id must be `< n_buses`.
    ///
    /// # Panics
    /// When an id is out of range — a construction-site bug.
    pub fn new(mut areas: Vec<Vec<u32>>, n_buses: u32) -> Self {
        for ids in &mut areas {
            ids.sort_unstable();
            ids.dedup();
            if let Some(&last) = ids.last() {
                assert!(last < n_buses, "area bus id {last} out of range {n_buses}");
            }
        }
        AreaMap { areas, n_buses }
    }

    /// `n_areas` contiguous stripes over `n_buses` buses (benches, tests).
    pub fn uniform(n_buses: u32, n_areas: u32) -> Self {
        let n_areas = n_areas.max(1);
        let per = n_buses.div_ceil(n_areas);
        let areas = (0..n_areas)
            .map(|a| (a * per..((a + 1) * per).min(n_buses)).collect())
            .collect();
        AreaMap { areas, n_buses }
    }

    /// Number of areas.
    pub fn n_areas(&self) -> usize {
        self.areas.len()
    }

    /// Number of buses.
    pub fn n_buses(&self) -> u32 {
        self.n_buses
    }

    /// The strictly increasing global bus ids `filter` selects, or `None`
    /// when the filter names an area / range outside the system.
    pub fn resolve(&self, filter: SubscriptionFilter) -> Option<Vec<u32>> {
        match filter {
            SubscriptionFilter::All => Some((0..self.n_buses).collect()),
            SubscriptionFilter::Area(a) => self.areas.get(a as usize).cloned(),
            SubscriptionFilter::BusRange { start, len } => {
                let end = start.checked_add(len)?;
                (len > 0 && end <= self.n_buses).then(|| (start..end).collect())
            }
        }
    }
}

/// Identifies one subscriber for pop/mark/unsubscribe calls.
pub type SubscriberId = u64;

/// Whether a queued buffer is a full view or a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufKind {
    /// Complete filtered view.
    Full,
    /// Delta against the subscriber's previous entry.
    Delta,
}

/// One encoded buffer queued for (or popped by) a subscriber.
#[derive(Debug, Clone)]
pub struct QueuedBuf {
    /// Epoch the buffer advances the reader to.
    pub epoch: u64,
    /// Full or delta.
    pub kind: BufKind,
    /// The encoded PGSS message, shared across subscribers of the class.
    pub bytes: Arc<Vec<u8>>,
}

struct Sub {
    filter: SubscriptionFilter,
    mode: DeliveryMode,
    ids: Arc<Vec<u32>>,
    queue: VecDeque<QueuedBuf>,
    /// Epoch of the last entry enqueued — the base the next delta chains
    /// onto. `None` until the first offer.
    next_base: Option<u64>,
}

#[derive(Default)]
struct Totals {
    published: u64,
    delivered: u64,
    shed: u64,
    coalesced: u64,
    refused: u64,
    encodes_full: u64,
    encodes_delta: u64,
    bytes_encoded: u64,
    bytes_delivered: u64,
    epochs: u64,
}

struct Inner {
    subs: HashMap<SubscriberId, Sub>,
    next_id: SubscriberId,
    prev: Option<Arc<SystemSnapshot>>,
    totals: Totals,
}

/// Final accounting of a serving session; every field also exists as a
/// `serve.*` obs counter, and [`ServeReport::unaccounted`] closes the
/// identity from either source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Queue entries offered: one per (publish × live subscriber), plus
    /// one per catch-up view handed to a late subscriber.
    pub published: u64,
    /// Entries consumed by their reader.
    pub delivered: u64,
    /// Entries pending (or mid-write) at disconnect/kill/shutdown.
    pub shed: u64,
    /// Entries superseded in-queue by a latest-wins collapse.
    pub coalesced: u64,
    /// Connections turned away (cap, bad handshake, bad filter).
    pub refused: u64,
    /// Distinct full-view encodes performed.
    pub encodes_full: u64,
    /// Distinct delta encodes performed.
    pub encodes_delta: u64,
    /// Bytes produced by encodes (per class, *not* per subscriber).
    pub bytes_encoded: u64,
    /// Bytes handed to readers (per subscriber).
    pub bytes_delivered: u64,
    /// Epochs offered to the subscriber set.
    pub epochs: u64,
    /// Subscribers still registered when the report was taken.
    pub subscribers: usize,
}

impl ServeReport {
    /// `published - delivered - shed - coalesced`; zero iff the
    /// accounting identity holds exactly.
    pub fn unaccounted(&self) -> i64 {
        self.published as i64
            - self.delivered as i64
            - self.shed as i64
            - self.coalesced as i64
    }
}

/// The subscription multiplexer over one snapshot stream (module docs for
/// the cost model and accounting).
pub struct Broadcaster {
    map: AreaMap,
    queue_cap: usize,
    inner: Mutex<Inner>,
    rec: Recorder,
}

impl Broadcaster {
    /// A broadcaster over `map` whose per-subscriber queues hold at most
    /// `queue_cap` (≥ 1) pending buffers before latest-wins collapse.
    pub fn new(map: AreaMap, queue_cap: usize) -> Self {
        Broadcaster {
            map,
            queue_cap: queue_cap.max(1),
            inner: Mutex::new(Inner {
                subs: HashMap::new(),
                next_id: 0,
                prev: None,
                totals: Totals::default(),
            }),
            rec: Recorder::new("serve"),
        }
    }

    /// The area map filters resolve against.
    pub fn area_map(&self) -> &AreaMap {
        &self.map
    }

    /// Registers a subscriber. When a snapshot is already published the
    /// subscriber is immediately offered a full catch-up view (counted as
    /// published like any other offer). Returns `None` when the filter
    /// does not resolve against the system — the caller turns that into a
    /// typed [`crate::wire::RefuseReason::BadFilter`].
    pub fn subscribe(
        &self,
        filter: SubscriptionFilter,
        mode: DeliveryMode,
    ) -> Option<SubscriberId> {
        let ids = Arc::new(self.map.resolve(filter)?);
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let mut sub = Sub { filter, mode, ids, queue: VecDeque::new(), next_base: None };
        if let Some(prev) = inner.prev.clone() {
            let bytes = Arc::new(wire::encode_full(&prev, filter, &sub.ids));
            inner.totals.encodes_full += 1;
            inner.totals.bytes_encoded += bytes.len() as u64;
            inner.totals.published += 1;
            self.rec.counter_add("serve.encode.full", 1);
            self.rec.counter_add("serve.bytes.encoded", bytes.len() as u64);
            self.rec.counter_add("serve.published", 1);
            sub.queue.push_back(QueuedBuf { epoch: prev.epoch, kind: BufKind::Full, bytes });
            sub.next_base = Some(prev.epoch);
        }
        inner.subs.insert(id, sub);
        Some(id)
    }

    /// Offers `snap` to every live subscriber: encodes each needed
    /// `(filter, kind)` class exactly once (in parallel), then enqueues
    /// the shared buffers.
    ///
    /// # Panics
    /// When `snap` does not advance the previously published epoch — the
    /// `EpochStore` upstream already guarantees monotonicity.
    pub fn publish(&self, snap: &Arc<SystemSnapshot>) {
        let mut inner = self.inner.lock();
        let prev = inner.prev.clone();
        if let Some(p) = &prev {
            assert!(p.epoch < snap.epoch, "broadcaster fed a non-advancing epoch");
        }
        let _sp = self.rec.span_at("serve.publish", snap.epoch);

        // Decide per subscriber what it needs; collect the distinct
        // encode classes. A delta only chains when the subscriber's last
        // enqueued epoch is the broadcast base *and* its queue has room —
        // a full queue is about to be collapsed, which resets the chain,
        // so it must receive a full view.
        let mut needed: BTreeMap<EncodeClass, Arc<Vec<u32>>> = BTreeMap::new();
        let mut wants: Vec<(SubscriberId, bool)> = Vec::with_capacity(inner.subs.len());
        for (&id, sub) in &inner.subs {
            let delta_ok = sub.mode == DeliveryMode::Delta
                && prev.as_ref().is_some_and(|p| sub.next_base == Some(p.epoch))
                && sub.queue.len() < self.queue_cap;
            needed.entry((sub.filter, delta_ok)).or_insert_with(|| Arc::clone(&sub.ids));
            wants.push((id, delta_ok));
        }

        // One encode per class, fanned over the rayon pool. Buffers are a
        // pure function of (prev, snap, filter), so pool size cannot
        // change a byte of them.
        let classes: Vec<(&EncodeClass, &Arc<Vec<u32>>)> =
            needed.iter().collect();
        let encoded: Vec<Arc<Vec<u8>>> = classes
            .par_iter()
            .map(|((filter, delta_ok), ids)| {
                let bytes = if *delta_ok {
                    wire::encode_delta(prev.as_deref().unwrap(), snap, *filter, ids)
                } else {
                    wire::encode_full(snap, *filter, ids)
                };
                Arc::new(bytes)
            })
            .collect();
        let by_class: BTreeMap<EncodeClass, Arc<Vec<u8>>> = classes
            .iter()
            .map(|(k, _)| **k)
            .zip(encoded)
            .collect();
        for ((_, delta_ok), bytes) in &by_class {
            if *delta_ok {
                inner.totals.encodes_delta += 1;
                self.rec.counter_add("serve.encode.delta", 1);
            } else {
                inner.totals.encodes_full += 1;
                self.rec.counter_add("serve.encode.full", 1);
            }
            inner.totals.bytes_encoded += bytes.len() as u64;
            self.rec.counter_add("serve.bytes.encoded", bytes.len() as u64);
        }

        // Fan out: every live subscriber is offered exactly one entry.
        let mut offered = 0u64;
        let mut coalesced = 0u64;
        for (id, delta_ok) in wants {
            let sub = inner.subs.get_mut(&id).expect("subscriber existed under the lock");
            let bytes = Arc::clone(&by_class[&(sub.filter, delta_ok)]);
            let kind = if delta_ok { BufKind::Delta } else { BufKind::Full };
            if sub.queue.len() >= self.queue_cap {
                // Latest-wins collapse: the backlog is superseded by this
                // epoch's full view (kind is Full here by construction).
                coalesced += sub.queue.len() as u64;
                sub.queue.clear();
            }
            sub.queue.push_back(QueuedBuf { epoch: snap.epoch, kind, bytes });
            sub.next_base = Some(snap.epoch);
            offered += 1;
        }
        inner.totals.published += offered;
        inner.totals.coalesced += coalesced;
        inner.totals.epochs += 1;
        self.rec.counter_add("serve.published", offered);
        self.rec.counter_add("serve.coalesced", coalesced);
        self.rec.counter_add("serve.epochs", 1);
        inner.prev = Some(Arc::clone(snap));
    }

    /// Pops the subscriber's next pending buffer *without* marking it: the
    /// caller owes the broadcaster a [`Broadcaster::mark_delivered`] or
    /// [`Broadcaster::mark_shed`] for it, or the accounting identity
    /// breaks. (In-process readers should use [`Subscription::recv`],
    /// which settles the entry atomically.)
    pub fn pop(&self, id: SubscriberId) -> Option<QueuedBuf> {
        self.inner.lock().subs.get_mut(&id)?.queue.pop_front()
    }

    /// Settles a popped buffer as delivered.
    pub fn mark_delivered(&self, buf: &QueuedBuf) {
        let mut inner = self.inner.lock();
        inner.totals.delivered += 1;
        inner.totals.bytes_delivered += buf.bytes.len() as u64;
        self.rec.counter_add("serve.delivered", 1);
        self.rec.counter_add("serve.bytes.delivered", buf.bytes.len() as u64);
    }

    /// Settles `n` popped buffers as shed (write failed, reader died
    /// mid-flight).
    pub fn mark_shed(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.inner.lock().totals.shed += n;
        self.rec.counter_add("serve.shed", n);
    }

    /// Counts a refused connection.
    pub fn count_refused(&self) {
        self.inner.lock().totals.refused += 1;
        self.rec.counter_add("serve.refused", 1);
    }

    /// Removes a subscriber; its pending entries are shed. Returns how
    /// many were shed (idempotent: unknown ids shed nothing).
    pub fn unsubscribe(&self, id: SubscriberId) -> u64 {
        let mut inner = self.inner.lock();
        let Some(sub) = inner.subs.remove(&id) else { return 0 };
        let shed = sub.queue.len() as u64;
        inner.totals.shed += shed;
        self.rec.counter_add("serve.shed", shed);
        shed
    }

    /// Sheds every subscriber's backlog and removes them all — the
    /// shutdown path. Returns total entries shed.
    pub fn shutdown_drain(&self) -> u64 {
        let ids: Vec<SubscriberId> = self.inner.lock().subs.keys().copied().collect();
        ids.into_iter().map(|id| self.unsubscribe(id)).sum()
    }

    /// Live subscriber count.
    pub fn n_subscribers(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// Current accounting snapshot.
    pub fn report(&self) -> ServeReport {
        let inner = self.inner.lock();
        let t = &inner.totals;
        ServeReport {
            published: t.published,
            delivered: t.delivered,
            shed: t.shed,
            coalesced: t.coalesced,
            refused: t.refused,
            encodes_full: t.encodes_full,
            encodes_delta: t.encodes_delta,
            bytes_encoded: t.bytes_encoded,
            bytes_delivered: t.bytes_delivered,
            epochs: t.epochs,
            subscribers: inner.subs.len(),
        }
    }

    /// Snapshot of the `serve` obs scope (counters mirror the report).
    pub fn obs_scope(&self) -> pgse_obs::ScopeReport {
        self.rec.snapshot()
    }
}

impl std::fmt::Debug for Broadcaster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broadcaster")
            .field("areas", &self.map.n_areas())
            .field("queue_cap", &self.queue_cap)
            .field("subscribers", &self.n_subscribers())
            .finish()
    }
}

/// An in-process subscription handle: pops settle atomically as
/// delivered, and dropping the handle without [`Subscription::close`]
/// still leaves the accounting closed (the broadcaster sheds the backlog
/// at shutdown).
pub struct Subscription {
    id: SubscriberId,
    bc: Arc<Broadcaster>,
}

impl Subscription {
    /// Subscribes against `bc`; `None` when the filter does not resolve.
    pub fn open(
        bc: &Arc<Broadcaster>,
        filter: SubscriptionFilter,
        mode: DeliveryMode,
    ) -> Option<Subscription> {
        let id = bc.subscribe(filter, mode)?;
        Some(Subscription { id, bc: Arc::clone(bc) })
    }

    /// The subscriber id (for seeded chaos schedules).
    pub fn id(&self) -> SubscriberId {
        self.id
    }

    /// Pops and settles the next pending buffer as delivered.
    pub fn recv(&self) -> Option<QueuedBuf> {
        let buf = self.bc.pop(self.id)?;
        self.bc.mark_delivered(&buf);
        Some(buf)
    }

    /// Unsubscribes; pending entries are shed.
    pub fn close(self) -> u64 {
        self.bc.unsubscribe(self.id)
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription").field("id", &self.id).finish()
    }
}

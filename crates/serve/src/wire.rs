//! The snapshot serving wire format: `PGSS` v1.
//!
//! Four message kinds travel between the serving reactor and its readers:
//! a reader's [`Subscribe`] (filter + delivery mode), the server's
//! [`FullView`] (a complete filtered snapshot), its [`DeltaView`] (only
//! the buses whose bits changed since the reader's last-held epoch), and
//! a typed [`Refusal`] (connection cap, malformed subscribe). Like the
//! measurement-frame format (`pgse_stream::wire`, `PGSF`), the layout is
//! fixed little-endian binary, decode is *total* — every malformed buffer
//! is a typed [`ServeWireError`], never a panic — and oversized counts
//! are rejected before anything is allocated.
//!
//! Delta encoding is bitwise: a bus appears in a [`DeltaView`] iff its
//! `vm` or `va` bits differ from the base epoch's, and
//! [`apply_delta`] reconstructs a [`FullView`] that is **bit-identical**
//! to what a full encode of the newer snapshot would have produced (the
//! `tests/serve_stream.rs` pin). That makes delta vs full purely a
//! bandwidth decision — never a fidelity one.

use pgse_stream::SystemSnapshot;

/// Frame magic: `PGSS` in big-endian byte order.
pub const MAGIC: u32 = 0x5047_5353;
/// Current wire version.
pub const VERSION: u8 = 1;

/// Header length: magic + version + kind.
const HEADER_LEN: usize = 4 + 1 + 1;
/// Encoded filter length: tag + two u32 operands.
const FILTER_LEN: usize = 1 + 4 + 4;
/// Per-bus record in a full view: vm + va.
const FULL_RECORD_LEN: usize = 8 + 8;
/// Per-bus record in a delta view: id + vm + va.
const DELTA_RECORD_LEN: usize = 4 + 8 + 8;

/// Message kind tags.
const KIND_SUBSCRIBE: u8 = 1;
const KIND_FULL: u8 = 2;
const KIND_DELTA: u8 = 3;
const KIND_REFUSED: u8 = 4;

/// What part of the system state a reader wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubscriptionFilter {
    /// Every bus.
    All,
    /// The buses of one decomposition area.
    Area(u32),
    /// A contiguous global bus-index range `[start, start+len)`.
    BusRange {
        /// First global bus index.
        start: u32,
        /// Number of buses; must be nonzero.
        len: u32,
    },
}

impl SubscriptionFilter {
    fn encode_into(self, buf: &mut Vec<u8>) {
        let (tag, a, b) = match self {
            SubscriptionFilter::All => (0u8, 0u32, 0u32),
            SubscriptionFilter::Area(area) => (1, area, 0),
            SubscriptionFilter::BusRange { start, len } => (2, start, len),
        };
        buf.push(tag);
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&b.to_le_bytes());
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ServeWireError> {
        let tag = r.u8()?;
        let a = r.u32()?;
        let b = r.u32()?;
        match tag {
            0 => Ok(SubscriptionFilter::All),
            1 => Ok(SubscriptionFilter::Area(a)),
            2 if b > 0 => Ok(SubscriptionFilter::BusRange { start: a, len: b }),
            2 => Err(ServeWireError::BadFilter),
            _ => Err(ServeWireError::BadFilter),
        }
    }
}

/// How a reader wants updates after its first full view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeliveryMode {
    /// A complete filtered view every epoch.
    Full,
    /// Bitwise deltas against the reader's last-held epoch, with automatic
    /// full re-sync whenever the delta chain breaks (overflow, late join).
    Delta,
}

/// A reader's opening handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscribe {
    /// What slice of the state to serve.
    pub filter: SubscriptionFilter,
    /// Full views or delta chains.
    pub mode: DeliveryMode,
    /// When set, snapshots are *pushed* as one-shot frames to this
    /// registered endpoint URL instead of streamed down the subscribing
    /// connection — the path a `medici::faults` proxy can sit on.
    pub deliver_url: Option<String>,
}

/// A complete filtered snapshot at one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct FullView {
    /// Publication epoch of the underlying snapshot.
    pub epoch: u64,
    /// Measurement-frame sequence the state was estimated from.
    pub frame_seq: u64,
    /// Model-time offset (seconds).
    pub dt_seconds: f64,
    /// The filter this view was produced for.
    pub filter: SubscriptionFilter,
    /// Global bus indices, strictly increasing; parallel to `vm`/`va`.
    pub ids: Vec<u32>,
    /// Voltage magnitudes (p.u.).
    pub vm: Vec<f64>,
    /// Voltage angles (radians).
    pub va: Vec<f64>,
    /// Areas degraded at this epoch (carried-over contributions).
    pub degraded_areas: Vec<u32>,
}

/// The buses that changed between two epochs of one filtered view.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaView {
    /// Epoch this delta advances the reader to.
    pub epoch: u64,
    /// Epoch the reader must hold for the delta to apply.
    pub base_epoch: u64,
    /// Measurement-frame sequence of the new epoch.
    pub frame_seq: u64,
    /// Model-time offset of the new epoch (seconds).
    pub dt_seconds: f64,
    /// The filter this view was produced for.
    pub filter: SubscriptionFilter,
    /// `(global bus id, new vm, new va)`, ids strictly increasing; only
    /// buses whose f64 bits changed.
    pub changed: Vec<(u32, f64, f64)>,
    /// Degraded areas of the *new* epoch (replaces the base's list).
    pub degraded_areas: Vec<u32>,
}

/// Why the server turned a connection away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuseReason {
    /// The listener is at its connection cap (the operand).
    ConnLimit(u32),
    /// The handshake did not decode as a [`Subscribe`].
    BadSubscribe,
    /// The subscribe named an area or bus range outside the system.
    BadFilter,
}

/// A typed refusal message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Refusal {
    /// Why the connection was refused.
    pub reason: RefuseReason,
}

/// Any PGSS message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMsg {
    /// Reader handshake.
    Subscribe(Subscribe),
    /// Complete filtered view.
    Full(FullView),
    /// Delta against the reader's last-held epoch.
    Delta(DeltaView),
    /// Typed refusal.
    Refused(Refusal),
}

/// Why a byte buffer failed to decode as a [`ServeMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeWireError {
    /// The buffer ends before the declared content does.
    Truncated,
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// Unknown wire version.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// Malformed subscription filter.
    BadFilter,
    /// Unknown delivery mode.
    BadMode(u8),
    /// Unknown refusal reason.
    BadReason(u8),
    /// Non-finite state value, non-monotone bus ids, or a delta whose
    /// epoch does not advance its base.
    BadValue,
    /// Delivery URL bytes are not UTF-8.
    BadUtf8,
    /// Bytes remain after the declared content.
    TrailingBytes,
}

impl std::fmt::Display for ServeWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeWireError::Truncated => write!(f, "message truncated"),
            ServeWireError::BadMagic => write!(f, "bad message magic"),
            ServeWireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            ServeWireError::BadKind(k) => write!(f, "unknown message kind {k}"),
            ServeWireError::BadFilter => write!(f, "malformed subscription filter"),
            ServeWireError::BadMode(m) => write!(f, "unknown delivery mode {m}"),
            ServeWireError::BadReason(r) => write!(f, "unknown refusal reason {r}"),
            ServeWireError::BadValue => {
                write!(f, "non-finite value, non-monotone ids, or non-advancing delta")
            }
            ServeWireError::BadUtf8 => write!(f, "delivery url is not utf-8"),
            ServeWireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for ServeWireError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeWireError> {
        let end = self.pos.checked_add(n).ok_or(ServeWireError::Truncated)?;
        if end > self.buf.len() {
            return Err(ServeWireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeWireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeWireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ServeWireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeWireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ServeWireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Rejects a declared element count the remaining bytes cannot hold
    /// *before* the caller allocates for it.
    fn guard_count(&self, count: usize, elem_len: usize) -> Result<(), ServeWireError> {
        if self.buf.len().saturating_sub(self.pos) < count.saturating_mul(elem_len) {
            return Err(ServeWireError::Truncated);
        }
        Ok(())
    }
}

fn header_into(buf: &mut Vec<u8>, kind: u8) {
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(kind);
}

fn degraded_into(buf: &mut Vec<u8>, degraded: &[u32]) {
    buf.extend_from_slice(&(degraded.len() as u16).to_le_bytes());
    for &a in degraded {
        buf.extend_from_slice(&a.to_le_bytes());
    }
}

/// Encoded size of a [`FullView`] with `n_ids` buses and `n_degraded`
/// degraded areas (used by the bench to price delta-vs-full without
/// encoding both).
pub fn full_encoded_len(n_ids: usize, n_degraded: usize) -> usize {
    HEADER_LEN + 8 + 8 + 8 + FILTER_LEN + 2 + 4 * n_degraded + 4 + n_ids * (4 + FULL_RECORD_LEN)
}

/// Encoded size of a [`DeltaView`] with `n_changed` changed buses.
pub fn delta_encoded_len(n_changed: usize, n_degraded: usize) -> usize {
    HEADER_LEN + 8 + 8 + 8 + 8 + FILTER_LEN + 2 + 4 * n_degraded + 4 + n_changed * DELTA_RECORD_LEN
}

/// Encodes any [`ServeMsg`] into its wire bytes.
pub fn encode_msg(msg: &ServeMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    match msg {
        ServeMsg::Subscribe(s) => {
            header_into(&mut buf, KIND_SUBSCRIBE);
            buf.push(match s.mode {
                DeliveryMode::Full => 0,
                DeliveryMode::Delta => 1,
            });
            s.filter.encode_into(&mut buf);
            let url = s.deliver_url.as_deref().unwrap_or("");
            buf.extend_from_slice(&(url.len() as u16).to_le_bytes());
            buf.extend_from_slice(url.as_bytes());
        }
        ServeMsg::Full(v) => {
            buf.reserve(full_encoded_len(v.ids.len(), v.degraded_areas.len()));
            header_into(&mut buf, KIND_FULL);
            buf.extend_from_slice(&v.epoch.to_le_bytes());
            buf.extend_from_slice(&v.frame_seq.to_le_bytes());
            buf.extend_from_slice(&v.dt_seconds.to_le_bytes());
            v.filter.encode_into(&mut buf);
            degraded_into(&mut buf, &v.degraded_areas);
            buf.extend_from_slice(&(v.ids.len() as u32).to_le_bytes());
            for &id in &v.ids {
                buf.extend_from_slice(&id.to_le_bytes());
            }
            for &x in &v.vm {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            for &x in &v.va {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        ServeMsg::Delta(d) => {
            buf.reserve(delta_encoded_len(d.changed.len(), d.degraded_areas.len()));
            header_into(&mut buf, KIND_DELTA);
            buf.extend_from_slice(&d.epoch.to_le_bytes());
            buf.extend_from_slice(&d.base_epoch.to_le_bytes());
            buf.extend_from_slice(&d.frame_seq.to_le_bytes());
            buf.extend_from_slice(&d.dt_seconds.to_le_bytes());
            d.filter.encode_into(&mut buf);
            degraded_into(&mut buf, &d.degraded_areas);
            buf.extend_from_slice(&(d.changed.len() as u32).to_le_bytes());
            for &(id, vm, va) in &d.changed {
                buf.extend_from_slice(&id.to_le_bytes());
                buf.extend_from_slice(&vm.to_le_bytes());
                buf.extend_from_slice(&va.to_le_bytes());
            }
        }
        ServeMsg::Refused(r) => {
            header_into(&mut buf, KIND_REFUSED);
            let (tag, detail) = match r.reason {
                RefuseReason::ConnLimit(limit) => (0u8, limit),
                RefuseReason::BadSubscribe => (1, 0),
                RefuseReason::BadFilter => (2, 0),
            };
            buf.push(tag);
            buf.extend_from_slice(&detail.to_le_bytes());
        }
    }
    buf
}

fn decode_degraded(r: &mut Reader<'_>) -> Result<Vec<u32>, ServeWireError> {
    let n = r.u16()? as usize;
    r.guard_count(n, 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn ids_strictly_increasing(ids: impl Iterator<Item = u32>) -> bool {
    let mut prev: Option<u32> = None;
    for id in ids {
        if prev.is_some_and(|p| p >= id) {
            return false;
        }
        prev = Some(id);
    }
    true
}

/// Decodes a wire buffer into a [`ServeMsg`].
///
/// Total: every malformed input — short buffer, bad magic/version/kind,
/// unknown tags, non-finite values, non-monotone bus ids, oversized
/// counts, trailing bytes — is a typed [`ServeWireError`]; the decoder
/// never panics on adversarial bytes.
///
/// # Errors
/// [`ServeWireError`] describing the first defect found.
pub fn decode_msg(buf: &[u8]) -> Result<ServeMsg, ServeWireError> {
    let mut r = Reader { buf, pos: 0 };
    if r.u32()? != MAGIC {
        return Err(ServeWireError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(ServeWireError::BadVersion(version));
    }
    let kind = r.u8()?;
    let msg = match kind {
        KIND_SUBSCRIBE => {
            let mode = match r.u8()? {
                0 => DeliveryMode::Full,
                1 => DeliveryMode::Delta,
                m => return Err(ServeWireError::BadMode(m)),
            };
            let filter = SubscriptionFilter::decode_from(&mut r)?;
            let url_len = r.u16()? as usize;
            let url_bytes = r.take(url_len)?;
            let deliver_url = if url_bytes.is_empty() {
                None
            } else {
                Some(
                    std::str::from_utf8(url_bytes)
                        .map_err(|_| ServeWireError::BadUtf8)?
                        .to_string(),
                )
            };
            ServeMsg::Subscribe(Subscribe { filter, mode, deliver_url })
        }
        KIND_FULL => {
            let epoch = r.u64()?;
            let frame_seq = r.u64()?;
            let dt_seconds = r.f64()?;
            if !dt_seconds.is_finite() {
                return Err(ServeWireError::BadValue);
            }
            let filter = SubscriptionFilter::decode_from(&mut r)?;
            let degraded_areas = decode_degraded(&mut r)?;
            let count = r.u32()? as usize;
            r.guard_count(count, 4 + FULL_RECORD_LEN)?;
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(r.u32()?);
            }
            if !ids_strictly_increasing(ids.iter().copied()) {
                return Err(ServeWireError::BadValue);
            }
            let mut vm = Vec::with_capacity(count);
            for _ in 0..count {
                let x = r.f64()?;
                if !x.is_finite() {
                    return Err(ServeWireError::BadValue);
                }
                vm.push(x);
            }
            let mut va = Vec::with_capacity(count);
            for _ in 0..count {
                let x = r.f64()?;
                if !x.is_finite() {
                    return Err(ServeWireError::BadValue);
                }
                va.push(x);
            }
            ServeMsg::Full(FullView {
                epoch,
                frame_seq,
                dt_seconds,
                filter,
                ids,
                vm,
                va,
                degraded_areas,
            })
        }
        KIND_DELTA => {
            let epoch = r.u64()?;
            let base_epoch = r.u64()?;
            if base_epoch >= epoch {
                return Err(ServeWireError::BadValue);
            }
            let frame_seq = r.u64()?;
            let dt_seconds = r.f64()?;
            if !dt_seconds.is_finite() {
                return Err(ServeWireError::BadValue);
            }
            let filter = SubscriptionFilter::decode_from(&mut r)?;
            let degraded_areas = decode_degraded(&mut r)?;
            let count = r.u32()? as usize;
            r.guard_count(count, DELTA_RECORD_LEN)?;
            let mut changed = Vec::with_capacity(count);
            for _ in 0..count {
                let id = r.u32()?;
                let vm = r.f64()?;
                let va = r.f64()?;
                if !vm.is_finite() || !va.is_finite() {
                    return Err(ServeWireError::BadValue);
                }
                changed.push((id, vm, va));
            }
            if !ids_strictly_increasing(changed.iter().map(|&(id, _, _)| id)) {
                return Err(ServeWireError::BadValue);
            }
            ServeMsg::Delta(DeltaView {
                epoch,
                base_epoch,
                frame_seq,
                dt_seconds,
                filter,
                changed,
                degraded_areas,
            })
        }
        KIND_REFUSED => {
            let tag = r.u8()?;
            let detail = r.u32()?;
            let reason = match tag {
                0 => RefuseReason::ConnLimit(detail),
                1 => RefuseReason::BadSubscribe,
                2 => RefuseReason::BadFilter,
                t => return Err(ServeWireError::BadReason(t)),
            };
            ServeMsg::Refused(Refusal { reason })
        }
        k => return Err(ServeWireError::BadKind(k)),
    };
    if r.pos != buf.len() {
        return Err(ServeWireError::TrailingBytes);
    }
    Ok(msg)
}

/// Builds the [`FullView`] of `snap` restricted to `ids` (strictly
/// increasing global bus indices) and encodes it.
pub fn encode_full(snap: &SystemSnapshot, filter: SubscriptionFilter, ids: &[u32]) -> Vec<u8> {
    let view = FullView {
        epoch: snap.epoch,
        frame_seq: snap.frame_seq,
        dt_seconds: snap.dt_seconds,
        filter,
        ids: ids.to_vec(),
        vm: ids.iter().map(|&i| snap.vm[i as usize]).collect(),
        va: ids.iter().map(|&i| snap.va[i as usize]).collect(),
        degraded_areas: snap.degraded_areas.iter().map(|&a| a as u32).collect(),
    };
    encode_msg(&ServeMsg::Full(view))
}

/// Encodes the [`DeltaView`] advancing a reader holding `base` to `next`,
/// restricted to `ids`. A bus is included iff its `vm` or `va` *bits*
/// differ between the two snapshots.
///
/// # Panics
/// When the two snapshots disagree on system size or `base` is not
/// strictly older than `next` — producer bugs, not wire conditions.
pub fn encode_delta(
    base: &SystemSnapshot,
    next: &SystemSnapshot,
    filter: SubscriptionFilter,
    ids: &[u32],
) -> Vec<u8> {
    assert_eq!(base.vm.len(), next.vm.len(), "snapshot size changed between epochs");
    assert!(base.epoch < next.epoch, "delta base must be older than its target");
    let changed: Vec<(u32, f64, f64)> = ids
        .iter()
        .filter(|&&i| {
            let i = i as usize;
            base.vm[i].to_bits() != next.vm[i].to_bits()
                || base.va[i].to_bits() != next.va[i].to_bits()
        })
        .map(|&i| (i, next.vm[i as usize], next.va[i as usize]))
        .collect();
    let view = DeltaView {
        epoch: next.epoch,
        base_epoch: base.epoch,
        frame_seq: next.frame_seq,
        dt_seconds: next.dt_seconds,
        filter,
        changed,
        degraded_areas: next.degraded_areas.iter().map(|&a| a as u32).collect(),
    };
    encode_msg(&ServeMsg::Delta(view))
}

/// Why a [`DeltaView`] could not be applied to a held [`FullView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// The delta's base epoch is not the held view's epoch.
    BaseMismatch {
        /// Epoch the reader holds.
        held: u64,
        /// Base the delta requires.
        required: u64,
    },
    /// The delta was produced for a different filter.
    FilterMismatch,
    /// A changed bus id is not part of the held view.
    UnknownId(u32),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::BaseMismatch { held, required } => {
                write!(f, "delta requires base epoch {required}, reader holds {held}")
            }
            ApplyError::FilterMismatch => write!(f, "delta is for a different filter"),
            ApplyError::UnknownId(id) => write!(f, "delta touches bus {id} outside the view"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Applies `delta` to the reader's held `prev` view, producing the view of
/// the newer epoch. The result is bit-identical to what [`encode_full`]
/// of the newer snapshot would have decoded to.
///
/// # Errors
/// [`ApplyError`] when the delta does not chain onto `prev`.
pub fn apply_delta(prev: &FullView, delta: &DeltaView) -> Result<FullView, ApplyError> {
    if delta.base_epoch != prev.epoch {
        return Err(ApplyError::BaseMismatch { held: prev.epoch, required: delta.base_epoch });
    }
    if delta.filter != prev.filter {
        return Err(ApplyError::FilterMismatch);
    }
    let mut next = FullView {
        epoch: delta.epoch,
        frame_seq: delta.frame_seq,
        dt_seconds: delta.dt_seconds,
        filter: prev.filter,
        ids: prev.ids.clone(),
        vm: prev.vm.clone(),
        va: prev.va.clone(),
        degraded_areas: delta.degraded_areas.clone(),
    };
    for &(id, vm, va) in &delta.changed {
        let at = next.ids.binary_search(&id).map_err(|_| ApplyError::UnknownId(id))?;
        next.vm[at] = vm;
        next.va[at] = va;
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, n: usize) -> SystemSnapshot {
        SystemSnapshot {
            epoch,
            frame_seq: epoch + 1,
            dt_seconds: epoch as f64 * 0.1,
            vm: (0..n).map(|i| 1.0 + 0.001 * (i as f64) + epoch as f64 * 1e-6).collect(),
            va: (0..n).map(|i| -0.01 * (i as f64) - epoch as f64 * 1e-7).collect(),
            degraded_areas: if epoch.is_multiple_of(2) { vec![] } else { vec![1, 3] },
        }
    }

    fn sample_msgs() -> Vec<ServeMsg> {
        let a = snap(4, 12);
        let b = snap(7, 12);
        let ids: Vec<u32> = (0..12).collect();
        let sub_ids: Vec<u32> = vec![2, 3, 5, 8];
        vec![
            ServeMsg::Subscribe(Subscribe {
                filter: SubscriptionFilter::Area(3),
                mode: DeliveryMode::Delta,
                deliver_url: Some("tcp://reader-7:9000".into()),
            }),
            ServeMsg::Subscribe(Subscribe {
                filter: SubscriptionFilter::BusRange { start: 4, len: 9 },
                mode: DeliveryMode::Full,
                deliver_url: None,
            }),
            decode_msg(&encode_full(&a, SubscriptionFilter::All, &ids)).unwrap(),
            decode_msg(&encode_delta(&a, &b, SubscriptionFilter::Area(1), &sub_ids)).unwrap(),
            ServeMsg::Refused(Refusal { reason: RefuseReason::ConnLimit(4096) }),
            ServeMsg::Refused(Refusal { reason: RefuseReason::BadSubscribe }),
        ]
    }

    #[test]
    fn every_kind_roundtrips() {
        for msg in sample_msgs() {
            let bytes = encode_msg(&msg);
            assert_eq!(decode_msg(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn every_truncation_is_rejected_not_panicked() {
        for msg in sample_msgs() {
            let bytes = encode_msg(&msg);
            for n in 0..bytes.len() {
                let err = decode_msg(&bytes[..n]).unwrap_err();
                assert!(
                    matches!(
                        err,
                        ServeWireError::Truncated
                            | ServeWireError::BadMagic
                            | ServeWireError::BadValue
                    ),
                    "prefix {n} of {msg:?}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn bad_magic_version_kind_are_typed() {
        let bytes = encode_msg(&sample_msgs()[0]);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert_eq!(decode_msg(&wrong_magic), Err(ServeWireError::BadMagic));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert_eq!(decode_msg(&wrong_version), Err(ServeWireError::BadVersion(9)));

        let mut wrong_kind = bytes.clone();
        wrong_kind[5] = 77;
        assert_eq!(decode_msg(&wrong_kind), Err(ServeWireError::BadKind(77)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for msg in sample_msgs() {
            let mut bytes = encode_msg(&msg);
            bytes.push(0);
            assert_eq!(decode_msg(&bytes), Err(ServeWireError::TrailingBytes), "{msg:?}");
        }
    }

    #[test]
    fn oversized_counts_are_rejected_before_allocating() {
        // Full view with an empty body claiming u32::MAX buses.
        let bytes = encode_full(&snap(0, 0), SubscriptionFilter::All, &[]);
        let count_at = bytes.len() - 4;
        let mut huge = bytes.clone();
        huge[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_msg(&huge), Err(ServeWireError::Truncated));

        // Degraded-area count beyond the buffer.
        let with_degraded = encode_full(&snap(1, 2), SubscriptionFilter::All, &[0, 1]);
        let degraded_count_at = HEADER_LEN + 8 + 8 + 8 + FILTER_LEN;
        let mut huge = with_degraded.clone();
        huge[degraded_count_at..degraded_count_at + 2]
            .copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(decode_msg(&huge), Err(ServeWireError::Truncated));
    }

    #[test]
    fn non_monotone_ids_and_non_finite_values_are_rejected() {
        let s = snap(3, 4);
        let bytes = encode_full(&s, SubscriptionFilter::All, &[0, 1, 2, 3]);
        // ids start right after the count word.
        let ids_at = bytes.len() - 4 * (4 + 16);
        let mut dup = bytes.clone();
        dup[ids_at..ids_at + 4].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(decode_msg(&dup), Err(ServeWireError::BadValue));

        let mut nan = bytes.clone();
        let vm_at = ids_at + 4 * 4;
        nan[vm_at..vm_at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_msg(&nan), Err(ServeWireError::BadValue));
    }

    #[test]
    fn delta_must_advance_its_base() {
        let a = snap(4, 6);
        let b = snap(9, 6);
        let ids: Vec<u32> = (0..6).collect();
        let bytes = encode_delta(&a, &b, SubscriptionFilter::All, &ids);
        // Rewrite base_epoch to equal epoch.
        let base_at = HEADER_LEN + 8;
        let mut stale = bytes.clone();
        stale[base_at..base_at + 8].copy_from_slice(&9u64.to_le_bytes());
        assert_eq!(decode_msg(&stale), Err(ServeWireError::BadValue));
    }

    #[test]
    fn bus_range_of_zero_length_is_rejected() {
        let msg = ServeMsg::Subscribe(Subscribe {
            filter: SubscriptionFilter::BusRange { start: 3, len: 2 },
            mode: DeliveryMode::Full,
            deliver_url: None,
        });
        let bytes = encode_msg(&msg);
        // Filter operands sit after header + mode byte + tag byte.
        let len_at = HEADER_LEN + 1 + 1 + 4;
        let mut zero = bytes.clone();
        zero[len_at..len_at + 4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_msg(&zero), Err(ServeWireError::BadFilter));
    }

    #[test]
    fn apply_delta_reconstructs_the_full_view_bitwise() {
        let a = snap(10, 24);
        let mut b = snap(11, 24);
        // Make b bit-identical to a except for a sparse changed set that
        // intersects every filter below, so each delta is a strict subset.
        b.vm.copy_from_slice(&a.vm);
        b.va.copy_from_slice(&a.va);
        for i in [0usize, 4, 10, 19] {
            b.vm[i] += 0.5;
            b.va[i] -= 0.25;
        }
        for filter_ids in [
            (SubscriptionFilter::All, (0u32..24).collect::<Vec<_>>()),
            (SubscriptionFilter::Area(2), vec![1, 4, 7, 19, 23]),
            (SubscriptionFilter::BusRange { start: 6, len: 5 }, (6..11).collect()),
        ] {
            let (filter, ids) = filter_ids;
            let full_a = encode_full(&a, filter, &ids);
            let full_b = encode_full(&b, filter, &ids);
            let delta = encode_delta(&a, &b, filter, &ids);
            assert!(delta.len() < full_b.len(), "delta not smaller for {filter:?}");
            let ServeMsg::Full(held) = decode_msg(&full_a).unwrap() else { unreachable!() };
            let ServeMsg::Delta(d) = decode_msg(&delta).unwrap() else { unreachable!() };
            let applied = apply_delta(&held, &d).unwrap();
            // The pin: re-encoding the applied view is byte-identical to a
            // direct full encode of the newer snapshot.
            assert_eq!(encode_msg(&ServeMsg::Full(applied)), full_b, "{filter:?}");
        }
    }

    #[test]
    fn apply_delta_rejects_wrong_base_filter_and_ids() {
        let a = snap(1, 8);
        let b = snap(2, 8);
        let ids: Vec<u32> = (0..8).collect();
        let ServeMsg::Full(held) =
            decode_msg(&encode_full(&a, SubscriptionFilter::All, &ids)).unwrap()
        else {
            unreachable!()
        };
        let ServeMsg::Delta(d) =
            decode_msg(&encode_delta(&a, &b, SubscriptionFilter::All, &ids)).unwrap()
        else {
            unreachable!()
        };

        let mut wrong_base = d.clone();
        wrong_base.base_epoch = 0;
        assert_eq!(
            apply_delta(&held, &wrong_base),
            Err(ApplyError::BaseMismatch { held: 1, required: 0 })
        );

        let mut wrong_filter = d.clone();
        wrong_filter.filter = SubscriptionFilter::Area(0);
        assert_eq!(apply_delta(&held, &wrong_filter), Err(ApplyError::FilterMismatch));

        let mut foreign = d.clone();
        foreign.changed = vec![(99, 1.0, 0.0)];
        assert_eq!(apply_delta(&held, &foreign), Err(ApplyError::UnknownId(99)));
    }
}

//! # pgse-serve
//!
//! The network-facing snapshot read path — ROADMAP's "serving layer":
//! fan the lock-free [`pgse_stream::SnapshotStore`]'s epochs out to
//! thousands of concurrent readers without the solver, the store, or the
//! encode pipeline ever scaling with the reader count.
//!
//! Three layers (DESIGN.md §14):
//!
//! * **wire** ([`wire`]) — the `PGSS` v1 binary format: full filtered
//!   views, *bitwise delta views* against the reader's last-held epoch,
//!   subscription handshakes with per-area / per-bus-range filters, and
//!   typed refusals. Decode is total and truncation-fuzzed;
//!   [`wire::apply_delta`] reconstructs the full view bit-identically.
//! * **mux** ([`mux`]) — the [`mux::Broadcaster`]: one encode per
//!   `(filter, full|delta)` class per epoch — O(areas) encode work for N
//!   subscribers — fanned into bounded per-subscriber queues with
//!   latest-wins collapse, under the exact accounting identity
//!   `published == delivered + shed + coalesced` (mirrored in `serve.*`
//!   obs counters, byte-identical across thread pools).
//! * **reactor** ([`reactor`]) — a single-thread poll reactor over
//!   non-blocking sockets (`medici::endpoint::Acceptor`): streamed
//!   connections for high-rate readers, one-shot push frames to
//!   registered endpoints for proxied readers, typed connection-cap
//!   refusals, deadline-bounded shutdown.

pub mod mux;
pub mod reactor;
pub mod wire;

pub use mux::{
    AreaMap, Broadcaster, BufKind, QueuedBuf, ServeReport, SubscriberId, Subscription,
};
pub use reactor::{tail_store, ReadError, RemoteReader, ServeConfig, SnapshotServer};
pub use wire::{
    apply_delta, decode_msg, encode_msg, ApplyError, DeliveryMode, DeltaView, FullView,
    RefuseReason, Refusal, ServeMsg, ServeWireError, Subscribe, SubscriptionFilter,
};

//! The serving reactor: one thread, many connections, no blocking waits.
//!
//! The estimation service's middleware handles its few dozen area
//! channels with a thread per connection; a read path facing thousands of
//! subscribers cannot. The [`SnapshotServer`] instead runs a single
//! *sweep loop* over non-blocking sockets (a poll reactor built on
//! `medici::endpoint::Acceptor`): each sweep accepts pending
//! connections (refusing past the cap with a typed PGSS refusal), makes
//! incremental progress on every handshake read and every in-flight
//! frame write, and pushes queued one-shot frames to push-mode
//! subscribers. Shutdown is deadline-bounded by construction — the loop
//! re-checks its stop flag every sweep and nothing ever parks in the
//! kernel.
//!
//! Two delivery paths share the [`Broadcaster`]'s queues and accounting:
//!
//! * **streamed** — the subscriber keeps its connection; encoded buffers
//!   flow down it as length-prefixed frames (`medici::framing` layout);
//! * **push** — the subscriber names a registered endpoint URL in its
//!   [`Subscribe`] and each buffer is delivered as a one-shot framed
//!   connect+write — the path a seeded `medici::faults` proxy can sit
//!   on, since the proxy store-and-forwards exactly such frames.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pgse_medici::endpoint::Acceptor;
use pgse_medici::{EndpointRegistry, MwError};
use pgse_stream::SnapshotStore;

use crate::mux::{Broadcaster, QueuedBuf, SubscriberId};
use crate::wire::{
    decode_msg, encode_msg, RefuseReason, Refusal, ServeMsg, ServeWireError, Subscribe,
};

/// Largest accepted handshake frame (a [`Subscribe`] is tiny).
const MAX_SUBSCRIBE_FRAME: u64 = 64 * 1024;

/// Serving reactor configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Logical endpoint URL the server binds through the registry.
    pub url: String,
    /// Connection cap; the `max_conns + 1`-th concurrent connection gets
    /// a typed refusal.
    pub max_conns: usize,
    /// Sweep pause when a pass made no progress.
    pub sweep_pause: Duration,
    /// How long a connection may sit in handshake without completing a
    /// [`Subscribe`] before it is dropped.
    pub handshake_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            url: "tcp://serve.pgse:9000".into(),
            max_conns: 1024,
            sweep_pause: Duration::from_micros(200),
            handshake_deadline: Duration::from_secs(5),
        }
    }
}

enum ConnState {
    Handshake { buf: Vec<u8>, since: Instant },
    Streaming { sub: SubscriberId, inflight: Option<InFlight> },
}

struct InFlight {
    prefix: [u8; 8],
    prefix_off: usize,
    body: QueuedBuf,
    body_off: usize,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
}

struct PushSub {
    sub: SubscriberId,
    url: String,
}

/// The running serving reactor; [`SnapshotServer::stop`] (or drop) shuts
/// it down within a bounded number of sweeps.
pub struct SnapshotServer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SnapshotServer {
    /// Binds `cfg.url` through `registry` and starts the reactor thread
    /// serving `broadcaster`'s subscriptions.
    ///
    /// # Errors
    /// [`MwError`] when the endpoint cannot be bound.
    pub fn start(
        registry: &EndpointRegistry,
        cfg: ServeConfig,
        broadcaster: Arc<Broadcaster>,
    ) -> Result<SnapshotServer, MwError> {
        let acceptor = Acceptor::with_limit(registry.bind(&cfg.url)?, cfg.max_conns)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_t = Arc::clone(&stop);
        let registry = registry.clone();
        let thread = std::thread::Builder::new()
            .name("pgse-serve-reactor".into())
            .spawn(move || reactor_loop(acceptor, registry, cfg, broadcaster, stop_t))
            .expect("spawn serve reactor");
        Ok(SnapshotServer { stop, thread: Some(thread) })
    }

    /// Stops the reactor and joins it. Pending queue entries of its
    /// connections are shed (the accounting identity stays closed).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SnapshotServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SnapshotServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotServer").finish_non_exhaustive()
    }
}

fn refusal_bytes(reason: RefuseReason) -> Vec<u8> {
    let body = encode_msg(&ServeMsg::Refused(Refusal { reason }));
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u64).to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Best-effort goodbye: a small refusal frame written with a short
/// timeout; failure just means the peer sees a bare close.
fn write_refusal(conn: &mut TcpStream, reason: RefuseReason) {
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_write_timeout(Some(Duration::from_millis(50)));
    let _ = conn.write_all(&refusal_bytes(reason));
}

fn reactor_loop(
    acceptor: Acceptor,
    registry: EndpointRegistry,
    cfg: ServeConfig,
    bc: Arc<Broadcaster>,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut pushes: Vec<PushSub> = Vec::new();

    while !stop.load(Ordering::SeqCst) {
        let mut progressed = false;

        // --- Accept sweep: drain the backlog, refusing past the cap. ---
        loop {
            let limit = acceptor.limit().unwrap_or(usize::MAX) as u32;
            match acceptor.try_accept(conns.len(), |c| {
                write_refusal(c, RefuseReason::ConnLimit(limit));
            }) {
                Ok(Some(conn)) => {
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    conns.push(Conn {
                        stream: conn,
                        state: ConnState::Handshake { buf: Vec::new(), since: Instant::now() },
                    });
                    progressed = true;
                }
                Ok(None) => break,
                Err(MwError::ConnLimit { .. }) => {
                    bc.count_refused();
                    progressed = true;
                }
                Err(_) => break,
            }
        }

        // --- Connection sweep: handshakes forward, writes forward. ---
        let mut i = 0;
        while i < conns.len() {
            match step_conn(&mut conns[i], &bc, &cfg, &mut pushes) {
                StepOutcome::Keep { moved } => {
                    progressed |= moved;
                    i += 1;
                }
                StepOutcome::Close => {
                    let conn = conns.swap_remove(i);
                    close_conn(conn, &bc);
                    progressed = true;
                }
            }
        }

        // --- Push sweep: at most one frame per push subscriber. ---
        for p in &pushes {
            if let Some(buf) = bc.pop(p.sub) {
                progressed = true;
                match push_deliver(&registry, &p.url, &buf) {
                    Ok(()) => bc.mark_delivered(&buf),
                    Err(_) => bc.mark_shed(1),
                }
            }
        }

        if !progressed {
            std::thread::sleep(cfg.sweep_pause);
        }
    }

    // Shutdown: every in-flight frame and queued entry is shed, every
    // subscriber unregistered — nothing goes unaccounted.
    for conn in conns.drain(..) {
        close_conn(conn, &bc);
    }
    for p in pushes.drain(..) {
        bc.unsubscribe(p.sub);
    }
}

fn close_conn(conn: Conn, bc: &Broadcaster) {
    if let ConnState::Streaming { sub, inflight } = conn.state {
        if inflight.is_some() {
            bc.mark_shed(1);
        }
        bc.unsubscribe(sub);
    }
}

enum StepOutcome {
    Keep { moved: bool },
    Close,
}

fn step_conn(
    conn: &mut Conn,
    bc: &Broadcaster,
    cfg: &ServeConfig,
    pushes: &mut Vec<PushSub>,
) -> StepOutcome {
    match &mut conn.state {
        ConnState::Handshake { buf, since } => {
            if since.elapsed() > cfg.handshake_deadline {
                return StepOutcome::Close;
            }
            let mut chunk = [0u8; 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => return StepOutcome::Close,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return StepOutcome::Close,
                }
            }
            if buf.len() < 8 {
                return StepOutcome::Keep { moved: false };
            }
            let len = u64::from_be_bytes(buf[..8].try_into().unwrap());
            if len > MAX_SUBSCRIBE_FRAME {
                write_refusal(&mut conn.stream, RefuseReason::BadSubscribe);
                bc.count_refused();
                return StepOutcome::Close;
            }
            let len = len as usize;
            if buf.len() < 8 + len {
                return StepOutcome::Keep { moved: false };
            }
            match decode_msg(&buf[8..8 + len]) {
                Ok(ServeMsg::Subscribe(Subscribe { filter, mode, deliver_url })) => {
                    let Some(sub) = bc.subscribe(filter, mode) else {
                        write_refusal(&mut conn.stream, RefuseReason::BadFilter);
                        bc.count_refused();
                        return StepOutcome::Close;
                    };
                    match deliver_url {
                        Some(url) => {
                            // Push mode: the control connection has done
                            // its job; deliveries go to the endpoint.
                            pushes.push(PushSub { sub, url });
                            StepOutcome::Close
                        }
                        None => {
                            conn.state = ConnState::Streaming { sub, inflight: None };
                            StepOutcome::Keep { moved: true }
                        }
                    }
                }
                Ok(_) | Err(_) => {
                    write_refusal(&mut conn.stream, RefuseReason::BadSubscribe);
                    bc.count_refused();
                    StepOutcome::Close
                }
            }
        }
        ConnState::Streaming { sub, inflight } => {
            // Liveness probe: a subscriber never speaks after its
            // handshake, so any readable event is either EOF (the reader
            // went away — release its cap slot) or a protocol violation;
            // both close the connection.
            let mut probe = [0u8; 64];
            match conn.stream.read(&mut probe) {
                Ok(_) => return StepOutcome::Close,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return StepOutcome::Close,
            }
            if inflight.is_none() {
                if let Some(body) = bc.pop(*sub) {
                    let mut prefix = [0u8; 8];
                    prefix.copy_from_slice(&(body.bytes.len() as u64).to_be_bytes());
                    *inflight = Some(InFlight { prefix, prefix_off: 0, body, body_off: 0 });
                }
            }
            if inflight.is_none() {
                return StepOutcome::Keep { moved: false };
            }
            let mut moved = false;
            {
                let fl = inflight.as_mut().expect("inflight checked above");
                loop {
                    let res = if fl.prefix_off < 8 {
                        conn.stream.write(&fl.prefix[fl.prefix_off..])
                    } else if fl.body_off < fl.body.bytes.len() {
                        conn.stream.write(&fl.body.bytes[fl.body_off..])
                    } else {
                        break; // frame fully written
                    };
                    match res {
                        Ok(0) => return StepOutcome::Close,
                        Ok(n) => {
                            if fl.prefix_off < 8 {
                                fl.prefix_off += n;
                            } else {
                                fl.body_off += n;
                            }
                            moved = true;
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            return StepOutcome::Keep { moved };
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => return StepOutcome::Close,
                    }
                }
            }
            let done = inflight.take().expect("inflight present");
            bc.mark_delivered(&done.body);
            StepOutcome::Keep { moved: true }
        }
    }
}

/// One-shot push delivery: connect to the (possibly proxied) endpoint and
/// write the buffer as a single length-prefixed frame.
fn push_deliver(registry: &EndpointRegistry, url: &str, buf: &QueuedBuf) -> Result<(), MwError> {
    let addr = registry.resolve(url)?;
    let mut conn = TcpStream::connect(addr)?;
    conn.set_write_timeout(Some(Duration::from_secs(5)))?;
    pgse_medici::framing::write_frame(&mut conn, &buf.bytes)?;
    Ok(())
}

/// Why a [`RemoteReader`] failed to produce the next message.
#[derive(Debug)]
pub enum ReadError {
    /// Socket-level failure or timeout.
    Transport(MwError),
    /// The frame arrived but did not decode.
    Wire(ServeWireError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Transport(e) => write!(f, "transport: {e}"),
            ReadError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A blocking streamed-mode client: subscribes over one connection and
/// reads framed PGSS messages off it — what the conformance tests, the
/// bench's socket phase, and the example readers use.
#[derive(Debug)]
pub struct RemoteReader {
    conn: TcpStream,
}

impl RemoteReader {
    /// Connects to the server endpoint and sends the subscribe handshake.
    ///
    /// # Errors
    /// [`MwError`] when the endpoint is unknown or the socket fails.
    pub fn connect(
        registry: &EndpointRegistry,
        server_url: &str,
        subscribe: Subscribe,
    ) -> Result<RemoteReader, MwError> {
        let addr = registry.resolve(server_url)?;
        let mut conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true).ok();
        pgse_medici::framing::write_frame(&mut conn, &encode_msg(&ServeMsg::Subscribe(subscribe)))?;
        Ok(RemoteReader { conn })
    }

    /// Reads the next message, waiting at most `deadline`.
    ///
    /// # Errors
    /// [`ReadError::Transport`] on timeout/EOF/socket failure,
    /// [`ReadError::Wire`] when the frame does not decode.
    pub fn next_within(&mut self, deadline: Duration) -> Result<ServeMsg, ReadError> {
        self.conn
            .set_read_timeout(Some(deadline))
            .map_err(|e| ReadError::Transport(e.into()))?;
        let body = pgse_medici::framing::read_frame(&mut self.conn).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                ReadError::Transport(MwError::Timeout { what: "read", after: deadline })
            } else {
                ReadError::Transport(e.into())
            }
        })?;
        decode_msg(&body).map_err(ReadError::Wire)
    }
}

/// Forwards every new epoch of `store` into `bc` until `stop` is raised;
/// returns the number of epochs forwarded. Run this in a (scoped) thread
/// beside the streaming service — the serve-side wiring onto
/// [`pgse_stream::StreamService::store`].
pub fn tail_store(
    store: &SnapshotStore,
    bc: &Broadcaster,
    stop: &AtomicBool,
    poll: Duration,
) -> u64 {
    let mut last: Option<u64> = None;
    let mut forwarded = 0u64;
    while !stop.load(Ordering::SeqCst) {
        if store.current_epoch() != last {
            if let Some(snap) = store.load() {
                // `load` may race past `current_epoch`; only strictly
                // newer epochs go out (the broadcaster insists).
                if last.is_none_or(|l| snap.epoch > l) {
                    last = Some(snap.epoch);
                    bc.publish(&snap);
                    forwarded += 1;
                    continue;
                }
            }
        }
        std::thread::sleep(poll);
    }
    forwarded
}

//! Observability restoration.
//!
//! When telemetry loss leaves state variables unobserved (an RTU outage, a
//! dropped PMU feed — the failure scenarios Bose et al. \[6\] exercise), the
//! estimator can be kept runnable by adding *pseudo measurements* drawn
//! from the last good estimate or from forecasts, with deliberately large
//! σ so they carry almost no weight wherever real telemetry exists.

use pgse_grid::Network;

use crate::jacobian::StateSpace;
use crate::measurement::{Measurement, MeasurementKind, MeasurementSet};
use crate::observability::{check, Observability};

/// What restoration did.
#[derive(Debug, Clone)]
pub struct RestorationReport {
    /// Pseudo measurements appended (indices into the returned set).
    pub added: Vec<usize>,
    /// Observability after restoration.
    pub after: Observability,
}

/// Standard deviation given to restoration pseudo measurements: large
/// enough that any real measurement dominates them.
pub const PSEUDO_SIGMA_VM: f64 = 0.1;
/// Angle pseudo-measurement deviation (radians).
pub const PSEUDO_SIGMA_VA: f64 = 0.2;

/// Restores observability of `set` on `net` by appending weak pseudo
/// measurements at the untouched state variables, using the prior profile
/// `(vm0, va0)` (e.g. the previous frame's estimate, or flat values).
///
/// Returns the augmented set and a report; if the set was already
/// observable it is returned unchanged.
pub fn restore(
    net: &Network,
    set: &MeasurementSet,
    space: &StateSpace,
    vm0: &[f64],
    va0: &[f64],
) -> (MeasurementSet, RestorationReport) {
    let before = check(net, set, space);
    if before.observable {
        return (set.clone(), RestorationReport { added: Vec::new(), after: before });
    }
    let mut augmented: MeasurementSet = set.as_slice().iter().copied().collect();
    let mut added = Vec::new();

    // Structural holes: pin each untouched state variable directly.
    let n = net.n_buses();
    for bus in 0..n {
        if let Some(col) = space.angle_pos(bus) {
            if before.untouched_states.contains(&col) {
                added.push(augmented.len());
                augmented.push(Measurement::new(
                    MeasurementKind::PmuAngle { bus },
                    va0[bus],
                    PSEUDO_SIGMA_VA,
                ));
            }
        }
        let vcol = space.mag_pos(bus);
        if before.untouched_states.contains(&vcol) {
            added.push(augmented.len());
            augmented.push(Measurement::new(
                MeasurementKind::Vmag { bus },
                vm0[bus],
                PSEUDO_SIGMA_VM,
            ));
        }
    }

    // Numerical rank deficiency without structural holes (e.g. a missing
    // angle reference): anchor the frame at bus 0, then keep adding weak
    // full-state anchors at successive buses until the gain matrix is SPD.
    let mut bus = 0usize;
    let mut after = check(net, &augmented, space);
    while !after.observable && bus < n {
        if let Some(_col) = space.angle_pos(bus) {
            added.push(augmented.len());
            augmented.push(Measurement::new(
                MeasurementKind::PmuAngle { bus },
                va0[bus],
                PSEUDO_SIGMA_VA,
            ));
        }
        added.push(augmented.len());
        augmented.push(Measurement::new(
            MeasurementKind::Vmag { bus },
            vm0[bus],
            PSEUDO_SIGMA_VM,
        ));
        after = check(net, &augmented, space);
        bus += 1;
    }
    (augmented, RestorationReport { added, after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetryPlan;
    use crate::wls::{WlsEstimator, WlsOptions};
    use pgse_grid::cases::ieee14;
    use pgse_powerflow::{solve, PfOptions};

    fn truth() -> (pgse_grid::Network, pgse_powerflow::PfSolution) {
        let net = ieee14();
        let pf = solve(&net, &PfOptions::default()).unwrap();
        (net, pf)
    }

    #[test]
    fn observable_set_passes_through_unchanged() {
        let (net, pf) = truth();
        let set = TelemetryPlan::full(&net, vec![0]).generate(&net, &pf, 1.0, 1);
        let space = StateSpace::with_reference(14, 0);
        let (aug, report) = restore(&net, &set, &space, &pf.vm, &pf.va);
        assert!(report.added.is_empty());
        assert_eq!(aug.len(), set.len());
        assert!(report.after.observable);
    }

    #[test]
    fn rtu_outage_is_restored_and_estimable() {
        let (net, pf) = truth();
        // Kill every measurement touching buses 9-13 (an RTU cluster).
        let dead: Vec<usize> = vec![9, 10, 11, 12, 13];
        let mut set = TelemetryPlan::full(&net, vec![0]).generate(&net, &pf, 1.0, 1);
        set.retain(|m| {
            let site = m.kind.site(&net.branches);
            let flows_into_dead = match m.kind {
                crate::measurement::MeasurementKind::Pflow { branch, .. }
                | crate::measurement::MeasurementKind::Qflow { branch, .. } => {
                    let br = &net.branches[branch];
                    dead.contains(&br.from) || dead.contains(&br.to)
                }
                crate::measurement::MeasurementKind::Pinj { bus }
                | crate::measurement::MeasurementKind::Qinj { bus } => {
                    // Injections at neighbours of dead buses involve them too.
                    dead.contains(&bus)
                        || net.branches.iter().any(|br| {
                            (br.from == bus && dead.contains(&br.to))
                                || (br.to == bus && dead.contains(&br.from))
                        })
                }
                _ => false,
            };
            !dead.contains(&site) && !flows_into_dead
        });
        let space = StateSpace::with_reference(14, 0);
        let before = check(&net, &set, &space);
        assert!(!before.observable, "outage must break observability");

        // Restore from a flat prior.
        let vm0 = vec![1.0; 14];
        let va0 = vec![0.0; 14];
        let (aug, report) = restore(&net, &set, &space, &vm0, &va0);
        assert!(report.after.observable, "{:?}", report.after.reason);
        assert!(!report.added.is_empty());

        // The estimator now runs; observed buses stay accurate.
        let est = WlsEstimator::new(net.clone(), space, WlsOptions::default());
        let out = est.estimate(&aug).unwrap();
        for i in 0..9 {
            assert!((out.vm[i] - pf.vm[i]).abs() < 5e-3, "bus {i}");
        }
    }

    #[test]
    fn missing_reference_gets_anchored() {
        let (net, pf) = truth();
        // Full state space with no PMU: the angle frame is free.
        let set = TelemetryPlan::full(&net, vec![]).generate(&net, &pf, 1.0, 1);
        let space = StateSpace::full(14);
        assert!(!check(&net, &set, &space).observable);
        let (aug, report) = restore(&net, &set, &space, &pf.vm, &pf.va);
        assert!(report.after.observable, "{:?}", report.after.reason);
        let est = WlsEstimator::new(net, space, WlsOptions::default());
        assert!(est.estimate(&aug).is_ok());
    }

    #[test]
    fn pseudo_sigmas_are_weak() {
        // The pseudo measurements must be at least an order of magnitude
        // weaker than real telemetry so they never fight real data.
        assert!(PSEUDO_SIGMA_VM >= 10.0 * crate::telemetry::SigmaSet::default().vmag);
        assert!(PSEUDO_SIGMA_VA >= 10.0 * crate::telemetry::SigmaSet::default().pmu_angle);
    }
}

//! The Gauss–Newton WLS estimator.
//!
//! Each iteration solves the *normal equations*
//! `G·Δx = HᵀR⁻¹·(z − h(x))` with `G = HᵀR⁻¹H`, using either the paper's
//! preconditioned conjugate gradient solver or a direct envelope Cholesky
//! baseline — the ablation the benches compare.

use pgse_grid::{Network, Ybus};
use pgse_sparsela::pcg::{pcg, CgOptions, Preconditioner};
use pgse_sparsela::{EnvelopeCholesky, LaError};

use crate::jacobian::{assemble_jacobian, evaluate_h, StateSpace};
use crate::measurement::MeasurementSet;

/// Preconditioner choice for the PCG gain solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecondKind {
    /// Plain CG.
    Identity,
    /// Diagonal scaling.
    Jacobi,
    /// Incomplete Cholesky, zero fill — the paper's "pre-conditioner matrix
    /// P" whose inverse multiplies both sides of `Ax = b` (§IV-C).
    Ic0,
}

/// How the gain-matrix system is solved in each Gauss–Newton step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GainSolver {
    /// Preconditioned conjugate gradient (the paper's HPC kernel).
    Pcg {
        /// Preconditioner.
        precond: PrecondKind,
        /// Use the rayon-parallel SpMV/dot kernels.
        parallel: bool,
    },
    /// Direct envelope Cholesky after RCM ordering (baseline).
    Cholesky,
}

impl Default for GainSolver {
    fn default() -> Self {
        GainSolver::Pcg { precond: PrecondKind::Ic0, parallel: false }
    }
}

/// Options of the Gauss–Newton loop.
#[derive(Debug, Clone, Copy)]
pub struct WlsOptions {
    /// Convergence tolerance on `‖Δx‖∞`.
    pub tol: f64,
    /// Maximum Gauss–Newton iterations.
    pub max_iter: usize,
    /// Linear solver for the gain system.
    pub solver: GainSolver,
    /// Inner PCG controls (ignored by the direct solver).
    pub cg: CgOptions,
}

impl Default for WlsOptions {
    fn default() -> Self {
        WlsOptions {
            tol: 1e-7,
            max_iter: 25,
            solver: GainSolver::default(),
            cg: CgOptions { rel_tol: 1e-12, max_iter: 5000, parallel: false },
        }
    }
}

/// WLS failure modes.
#[derive(Debug, Clone)]
pub enum WlsError {
    /// The gain matrix is singular/indefinite: the network is not
    /// observable with the given measurement set.
    NotObservable(String),
    /// The inner linear solver failed.
    Solver(LaError),
    /// The Gauss–Newton loop did not reach tolerance.
    DidNotConverge { iterations: usize, last_step: f64 },
}

impl std::fmt::Display for WlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WlsError::NotObservable(e) => write!(f, "system not observable: {e}"),
            WlsError::Solver(e) => write!(f, "gain solve failed: {e}"),
            WlsError::DidNotConverge { iterations, last_step } => {
                write!(f, "WLS stalled after {iterations} iterations (last step {last_step:.3e})")
            }
        }
    }
}

impl std::error::Error for WlsError {}

/// The estimator's output.
#[derive(Debug, Clone)]
pub struct StateEstimate {
    /// Estimated voltage magnitudes (p.u.).
    pub vm: Vec<f64>,
    /// Estimated voltage angles (radians).
    pub va: Vec<f64>,
    /// Gauss–Newton iterations used — the paper's `Ni`.
    pub iterations: usize,
    /// Weighted objective `J(x̂) = Σ w·r²` at the solution.
    pub objective: f64,
    /// Measurement residuals `z − h(x̂)`.
    pub residuals: Vec<f64>,
    /// Inner linear-solver iterations per Gauss–Newton step (all zeros for
    /// the direct solver).
    pub solver_iterations: Vec<usize>,
}

impl StateEstimate {
    /// Root-mean-square voltage-magnitude error against a reference profile.
    pub fn vm_rmse(&self, truth: &[f64]) -> f64 {
        rmse(&self.vm, truth)
    }

    /// Root-mean-square angle error (radians) against a reference profile.
    pub fn va_rmse(&self, truth: &[f64]) -> f64 {
        rmse(&self.va, truth)
    }
}

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    let s: f64 = a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum();
    (s / a.len() as f64).sqrt()
}

/// A WLS estimator bound to one (sub)network and state-space convention.
#[derive(Debug, Clone)]
pub struct WlsEstimator {
    net: Network,
    ybus: Ybus,
    space: StateSpace,
    opts: WlsOptions,
}

impl WlsEstimator {
    /// Builds an estimator. When `set`s will carry a PMU angle reference use
    /// [`StateSpace::full`]; otherwise use a slack-referenced space.
    pub fn new(net: Network, space: StateSpace, opts: WlsOptions) -> Self {
        assert_eq!(space.n_buses(), net.n_buses(), "state space size mismatch");
        let ybus = {
            let _sp = pgse_obs::span("wls.ybus");
            Ybus::new(&net)
        };
        WlsEstimator { net, ybus, space, opts }
    }

    /// The network this estimator operates on.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The state-space convention in use.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Runs Gauss–Newton WLS from a flat start.
    ///
    /// # Errors
    /// See [`WlsError`].
    pub fn estimate(&self, set: &MeasurementSet) -> Result<StateEstimate, WlsError> {
        self.estimate_from(set, None)
    }

    /// Runs WLS from the given warm-start profile `(vm, va)`.
    pub fn estimate_from(
        &self,
        set: &MeasurementSet,
        warm: Option<(&[f64], &[f64])>,
    ) -> Result<StateEstimate, WlsError> {
        let n = self.net.n_buses();
        if set.len() < self.space.dim() {
            return Err(WlsError::NotObservable(format!(
                "{} measurements for {} state variables",
                set.len(),
                self.space.dim()
            )));
        }
        let (mut vm, mut va) = match warm {
            Some((wm, wa)) => (wm.to_vec(), wa.to_vec()),
            None => (vec![1.0; n], vec![0.0; n]),
        };
        let z = set.values();
        let w = set.weights();

        let mut est_span = pgse_obs::span("wls.estimate");
        let mut solver_iterations = Vec::new();
        let mut last_step = f64::INFINITY;
        for iter in 1..=self.opts.max_iter {
            let mut iter_span = pgse_obs::span_at("wls.iteration", iter as u64);
            let (h, jac) = {
                let _sp = pgse_obs::span("wls.jacobian");
                let h = evaluate_h(&self.net, &self.ybus, set, &vm, &va);
                let jac = assemble_jacobian(&self.net, &self.ybus, set, &self.space, &vm, &va);
                (h, jac)
            };
            let r: Vec<f64> = z.iter().zip(&h).map(|(zi, hi)| zi - hi).collect();
            if iter == 1 {
                // Structural observability: every state variable must be
                // touched by at least one measurement, or the gain matrix is
                // singular no matter how the numbers fall.
                let mut touched = vec![false; self.space.dim()];
                for r in 0..jac.nrows() {
                    for &c in jac.row(r).0 {
                        touched[c] = true;
                    }
                }
                if let Some(hole) = touched.iter().position(|&t| !t) {
                    return Err(WlsError::NotObservable(format!(
                        "state variable {hole} has no incident measurement"
                    )));
                }
            }
            // rhs = Hᵀ W r
            let wr: Vec<f64> = r.iter().zip(&w).map(|(ri, wi)| ri * wi).collect();
            let mut rhs = vec![0.0; self.space.dim()];
            jac.spmv_transpose(&wr, &mut rhs);
            // Gain matrix G = Hᵀ W H.
            let gain = {
                let _sp = pgse_obs::span("wls.gain");
                jac.ata_weighted(&w)
            };

            let solve_span = pgse_obs::span("wls.gain_solve");
            let (dx, inner) = match self.opts.solver {
                GainSolver::Cholesky => {
                    let chol = EnvelopeCholesky::factor(&gain).map_err(|e| match e {
                        LaError::NotPositiveDefinite { .. } => {
                            WlsError::NotObservable(e.to_string())
                        }
                        other => WlsError::Solver(other),
                    })?;
                    (chol.solve(&rhs), 0usize)
                }
                GainSolver::Pcg { precond, parallel } => {
                    let m = match precond {
                        PrecondKind::Identity => Preconditioner::Identity,
                        PrecondKind::Jacobi => Preconditioner::jacobi(&gain)
                            .map_err(|e| WlsError::NotObservable(e.to_string()))?,
                        PrecondKind::Ic0 => Preconditioner::ic0(&gain)
                            .map_err(|e| WlsError::NotObservable(e.to_string()))?,
                    };
                    let cg_opts = CgOptions { parallel, ..self.opts.cg };
                    let out = pcg(&gain, &rhs, &m, &cg_opts).map_err(WlsError::Solver)?;
                    (out.x, out.iterations)
                }
            };
            drop(solve_span);
            solver_iterations.push(inner);
            iter_span.record("solver_iterations", inner);
            self.space.apply_update(&dx, &mut vm, &mut va);
            last_step = dx.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if last_step <= self.opts.tol {
                drop(iter_span);
                est_span.record("iterations", iter);
                est_span.record("converged", true);
                pgse_obs::counter_add("wls.gn_iterations", iter as u64);
                let h = evaluate_h(&self.net, &self.ybus, set, &vm, &va);
                let residuals: Vec<f64> = z.iter().zip(&h).map(|(zi, hi)| zi - hi).collect();
                let objective = residuals.iter().zip(&w).map(|(ri, wi)| ri * ri * wi).sum();
                return Ok(StateEstimate {
                    vm,
                    va,
                    iterations: iter,
                    objective,
                    residuals,
                    solver_iterations,
                });
            }
        }
        est_span.record("iterations", self.opts.max_iter);
        est_span.record("converged", false);
        pgse_obs::counter_add("wls.gn_iterations", self.opts.max_iter as u64);
        Err(WlsError::DidNotConverge { iterations: self.opts.max_iter, last_step })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{FlowSide, Measurement, MeasurementKind};
    use pgse_grid::cases::ieee14;
    use pgse_powerflow::{solve, PfOptions};

    /// Exact (noise-free) measurement set from the solved power flow.
    fn exact_set(net: &pgse_grid::Network, pmu_buses: &[usize]) -> MeasurementSet {
        let sol = solve(net, &PfOptions::default()).unwrap();
        let mut set = MeasurementSet::new();
        for i in 0..net.n_buses() {
            set.push(Measurement::new(MeasurementKind::Vmag { bus: i }, sol.vm[i], 0.004));
            set.push(Measurement::new(MeasurementKind::Pinj { bus: i }, sol.p_inj[i], 0.01));
            set.push(Measurement::new(MeasurementKind::Qinj { bus: i }, sol.q_inj[i], 0.01));
        }
        for (k, f) in sol.flows.iter().enumerate() {
            set.push(Measurement::new(
                MeasurementKind::Pflow { branch: k, side: FlowSide::From },
                f.p_from,
                0.008,
            ));
            set.push(Measurement::new(
                MeasurementKind::Qflow { branch: k, side: FlowSide::From },
                f.q_from,
                0.008,
            ));
        }
        for &b in pmu_buses {
            set.push(Measurement::new(MeasurementKind::PmuVmag { bus: b }, sol.vm[b], 0.002));
            set.push(Measurement::new(MeasurementKind::PmuAngle { bus: b }, sol.va[b], 0.001));
        }
        set
    }

    #[test]
    fn zero_noise_recovers_exact_state_slack_referenced() {
        let net = ieee14();
        let truth = solve(&net, &PfOptions::default()).unwrap();
        let set = exact_set(&net, &[]);
        let est = WlsEstimator::new(
            net.clone(),
            StateSpace::with_reference(14, net.slack()),
            WlsOptions::default(),
        );
        let out = est.estimate(&set).unwrap();
        assert!(out.vm_rmse(&truth.vm) < 1e-7, "vm rmse {}", out.vm_rmse(&truth.vm));
        assert!(out.va_rmse(&truth.va) < 1e-7, "va rmse {}", out.va_rmse(&truth.va));
        assert!(out.objective < 1e-8);
    }

    #[test]
    fn zero_noise_recovers_exact_state_pmu_referenced() {
        let net = ieee14();
        let truth = solve(&net, &PfOptions::default()).unwrap();
        let set = exact_set(&net, &[0, 5]);
        let est = WlsEstimator::new(net, StateSpace::full(14), WlsOptions::default());
        let out = est.estimate(&set).unwrap();
        assert!(out.vm_rmse(&truth.vm) < 1e-7);
        assert!(out.va_rmse(&truth.va) < 1e-7);
    }

    #[test]
    fn pcg_and_cholesky_agree() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let space = || StateSpace::with_reference(14, 0);
        let pcg_est = WlsEstimator::new(net.clone(), space(), WlsOptions::default());
        let chol_est = WlsEstimator::new(
            net,
            space(),
            WlsOptions { solver: GainSolver::Cholesky, ..WlsOptions::default() },
        );
        let a = pcg_est.estimate(&set).unwrap();
        let b = chol_est.estimate(&set).unwrap();
        for i in 0..14 {
            assert!((a.vm[i] - b.vm[i]).abs() < 1e-8);
            assert!((a.va[i] - b.va[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn all_preconditioners_converge() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        for precond in [PrecondKind::Identity, PrecondKind::Jacobi, PrecondKind::Ic0] {
            let est = WlsEstimator::new(
                net.clone(),
                StateSpace::with_reference(14, 0),
                WlsOptions {
                    solver: GainSolver::Pcg { precond, parallel: false },
                    ..WlsOptions::default()
                },
            );
            let out = est.estimate(&set);
            assert!(out.is_ok(), "{precond:?} failed: {:?}", out.err());
        }
    }

    #[test]
    fn ic0_needs_fewest_inner_iterations() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let run = |precond| {
            let est = WlsEstimator::new(
                net.clone(),
                StateSpace::with_reference(14, 0),
                WlsOptions {
                    solver: GainSolver::Pcg { precond, parallel: false },
                    ..WlsOptions::default()
                },
            );
            let out = est.estimate(&set).unwrap();
            out.solver_iterations.iter().sum::<usize>()
        };
        let ident = run(PrecondKind::Identity);
        let ic0 = run(PrecondKind::Ic0);
        assert!(ic0 < ident, "ic0 {ic0} !< identity {ident}");
    }

    #[test]
    fn underdetermined_set_is_rejected() {
        let net = ieee14();
        let set: MeasurementSet =
            [Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.0, 0.01)].into_iter().collect();
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        assert!(matches!(est.estimate(&set), Err(WlsError::NotObservable(_))));
    }

    #[test]
    fn unobservable_island_is_detected() {
        // Plenty of measurements, but none touching buses 9-13's angles
        // beyond magnitude: delete all injections/flows involving the
        // 6-11-10-9-14-13-12 region except magnitudes.
        let net = ieee14();
        let mut set = exact_set(&net, &[]);
        let cut: Vec<usize> = vec![5, 8, 9, 10, 11, 12, 13];
        set.retain(|m| match m.kind {
            MeasurementKind::Pinj { bus } | MeasurementKind::Qinj { bus } => !cut.contains(&bus),
            MeasurementKind::Pflow { branch, .. } | MeasurementKind::Qflow { branch, .. } => {
                let br = &net.branches[branch];
                !cut.contains(&br.from) && !cut.contains(&br.to)
            }
            _ => true,
        });
        // Keep enough raw count that only observability (rank), not the
        // count check, can reject.
        while set.len() < 27 {
            set.push(Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.06, 0.004));
        }
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        assert!(est.estimate(&set).is_err());
    }

    #[test]
    fn warm_start_converges_faster() {
        let net = ieee14();
        let truth = solve(&net, &PfOptions::default()).unwrap();
        let set = exact_set(&net, &[]);
        let est = WlsEstimator::new(
            net,
            StateSpace::with_reference(14, 0),
            WlsOptions::default(),
        );
        let cold = est.estimate(&set).unwrap();
        let warm = est.estimate_from(&set, Some((&truth.vm, &truth.va))).unwrap();
        assert!(warm.iterations <= cold.iterations);
    }
}

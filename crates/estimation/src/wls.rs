//! The Gauss–Newton WLS estimator.
//!
//! Each iteration solves the *normal equations*
//! `G·Δx = HᵀR⁻¹·(z − h(x))` with `G = HᵀR⁻¹H`, using either the paper's
//! preconditioned conjugate gradient solver or a direct envelope Cholesky
//! baseline — the ablation the benches compare.

use pgse_grid::{Network, Ybus};
use pgse_sparsela::pcg::{pcg, CgOptions, Preconditioner};
use pgse_sparsela::{
    AtaSymbolic, BoundaryCondenser, Csr, EnvelopeCholesky, LaError, SparseCholesky,
};

use crate::jacobian::{assemble_jacobian, evaluate_h, JacobianPattern, StateSpace};
use crate::measurement::MeasurementSet;

/// Preconditioner choice for the PCG gain solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecondKind {
    /// Plain CG.
    Identity,
    /// Diagonal scaling.
    Jacobi,
    /// Incomplete Cholesky, zero fill — the paper's "pre-conditioner matrix
    /// P" whose inverse multiplies both sides of `Ax = b` (§IV-C).
    Ic0,
}

/// How the gain-matrix system is solved in each Gauss–Newton step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GainSolver {
    /// Preconditioned conjugate gradient (the paper's HPC kernel).
    Pcg {
        /// Preconditioner.
        precond: PrecondKind,
        /// Use the rayon-parallel SpMV/dot kernels.
        parallel: bool,
    },
    /// Direct envelope Cholesky after RCM ordering (baseline).
    Cholesky,
    /// Direct sparse Cholesky (elimination-tree, minimum-degree ordered)
    /// with **numeric refactorization reuse**: on the cached path
    /// ([`WlsEstimator::estimate_cached`]) the factor's symbolic structure
    /// is kept in the [`SolveCache`], and warm frames whose gain pattern is
    /// unchanged refresh only the numeric values — bitwise identical to a
    /// from-scratch factorization, at a fraction of the cost. The
    /// streaming default (see `pgse-stream`).
    Direct,
}

impl GainSolver {
    /// PCG with the given preconditioner and the default `parallel`
    /// choice. Use this instead of spelling out `GainSolver::Pcg { ..,
    /// parallel: .. }` so call sites don't silently pin the kernels to one
    /// execution mode — the parallel kernels are bitwise identical to the
    /// sequential ones, so inheriting the default is always safe.
    pub fn pcg(precond: PrecondKind) -> Self {
        let GainSolver::Pcg { parallel, .. } = GainSolver::default() else {
            unreachable!("default gain solver is PCG");
        };
        GainSolver::Pcg { precond, parallel }
    }
}

impl Default for GainSolver {
    fn default() -> Self {
        GainSolver::Pcg { precond: PrecondKind::Ic0, parallel: true }
    }
}

/// Options of the Gauss–Newton loop.
#[derive(Debug, Clone, Copy)]
pub struct WlsOptions {
    /// Convergence tolerance on `‖Δx‖∞`.
    pub tol: f64,
    /// Maximum Gauss–Newton iterations.
    pub max_iter: usize,
    /// Linear solver for the gain system.
    pub solver: GainSolver,
    /// Inner PCG controls (ignored by the direct solver).
    pub cg: CgOptions,
}

impl WlsOptions {
    /// The defaults with the [`GainSolver::Direct`] refactorization-reuse
    /// solver — the streaming warm-frame configuration.
    pub fn direct() -> Self {
        WlsOptions { solver: GainSolver::Direct, ..WlsOptions::default() }
    }
}

impl Default for WlsOptions {
    fn default() -> Self {
        WlsOptions {
            tol: 1e-7,
            max_iter: 25,
            solver: GainSolver::default(),
            cg: CgOptions { rel_tol: 1e-12, max_iter: 5000, parallel: true },
        }
    }
}

/// WLS failure modes.
#[derive(Debug, Clone)]
pub enum WlsError {
    /// The gain matrix is singular/indefinite: the network is not
    /// observable with the given measurement set.
    NotObservable(String),
    /// The inner linear solver failed.
    Solver(LaError),
    /// The Gauss–Newton loop did not reach tolerance.
    DidNotConverge { iterations: usize, last_step: f64 },
}

impl std::fmt::Display for WlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WlsError::NotObservable(e) => write!(f, "system not observable: {e}"),
            WlsError::Solver(e) => write!(f, "gain solve failed: {e}"),
            WlsError::DidNotConverge { iterations, last_step } => {
                write!(f, "WLS stalled after {iterations} iterations (last step {last_step:.3e})")
            }
        }
    }
}

impl std::error::Error for WlsError {}

/// The estimator's output.
#[derive(Debug, Clone)]
pub struct StateEstimate {
    /// Estimated voltage magnitudes (p.u.).
    pub vm: Vec<f64>,
    /// Estimated voltage angles (radians).
    pub va: Vec<f64>,
    /// Gauss–Newton iterations used — the paper's `Ni`.
    pub iterations: usize,
    /// Weighted objective `J(x̂) = Σ w·r²` at the solution.
    pub objective: f64,
    /// Measurement residuals `z − h(x̂)`.
    pub residuals: Vec<f64>,
    /// Inner linear-solver iterations per Gauss–Newton step (all zeros for
    /// the direct solver).
    pub solver_iterations: Vec<usize>,
}

impl StateEstimate {
    /// Root-mean-square voltage-magnitude error against a reference profile.
    pub fn vm_rmse(&self, truth: &[f64]) -> f64 {
        rmse(&self.vm, truth)
    }

    /// Root-mean-square angle error (radians) against a reference profile.
    pub fn va_rmse(&self, truth: &[f64]) -> f64 {
        rmse(&self.va, truth)
    }
}

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    let s: f64 = a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum();
    (s / a.len() as f64).sqrt()
}

/// Cross-frame solve state for [`WlsEstimator::estimate_cached`].
///
/// Holds everything that survives between frames while the topology and
/// telemetry plan stay put: the Jacobian sparsity pattern, the symbolic
/// structure of the gain matrix `G = HᵀWH`, reusable numeric buffers for
/// both, and the previous frame's solution as the warm start. Structures
/// rebuild automatically (and are counted) when the measurement set's
/// structure changes.
#[derive(Debug, Clone, Default)]
pub struct SolveCache {
    pattern: Option<JacobianPattern>,
    jac_buf: Option<Csr>,
    gain_sym: Option<AtaSymbolic>,
    gain_buf: Option<Csr>,
    /// Cached direct factor of the gain matrix; warm frames with an
    /// unchanged gain pattern refresh its numeric values only
    /// ([`GainSolver::Direct`]).
    chol: Option<SparseCholesky>,
    /// State indices forming the boundary block of a Schur-condensed
    /// direct solve ([`SolveCache::set_condense_targets`]); `None` keeps
    /// the plain factorization.
    condense_boundary: Option<Vec<usize>>,
    /// Cached condensation; warm frames refresh it numerically.
    condenser: Option<BoundaryCondenser>,
    warm: Option<(Vec<f64>, Vec<f64>)>,
    /// Symbolic structures built from scratch (topology/plan changes).
    pub symbolic_builds: u64,
    /// Frames that reused the cached structures.
    pub symbolic_reuses: u64,
    /// Solves seeded from a warm state.
    pub warm_solves: u64,
    /// Solves that fell back to a flat start.
    pub cold_solves: u64,
    /// Direct gain solves that refreshed the cached numeric factor
    /// (pattern unchanged — the cheap path).
    pub refactor_reuse: u64,
    /// Direct gain solves that factored from scratch (first frame, or the
    /// gain pattern changed).
    pub refactor_full: u64,
    /// Direct gain solves routed through the Schur-condensed path
    /// (each also counts in `refactor_reuse`/`refactor_full`).
    pub condensed_solves: u64,
}

impl SolveCache {
    /// An empty cache; structures build lazily on first use.
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// The stored warm-start profile, if a previous solve succeeded.
    pub fn warm_state(&self) -> Option<(&[f64], &[f64])> {
        self.warm.as_ref().map(|(vm, va)| (vm.as_slice(), va.as_slice()))
    }

    /// Drops cached structures and the warm state (e.g. after a topology
    /// change the caller knows about). Condensation targets survive — they
    /// derive from the state-space layout, not the frame.
    pub fn clear(&mut self) {
        self.pattern = None;
        self.jac_buf = None;
        self.gain_sym = None;
        self.gain_buf = None;
        self.chol = None;
        self.condenser = None;
        self.warm = None;
    }

    /// Routes [`GainSolver::Direct`] cached solves through a
    /// [`BoundaryCondenser`]: the given state indices become the boundary
    /// block and everything else (internal + foreign buses in an extended
    /// model) is condensed out through the Schur complement. Ignored when
    /// the split would be degenerate (no internal or no boundary block) —
    /// the plain factorization runs instead. Condensed solutions agree
    /// with the uncondensed ones to solver tolerance, not bitwise.
    pub fn set_condense_targets(&mut self, boundary_states: Vec<usize>) {
        self.condense_boundary =
            if boundary_states.is_empty() { None } else { Some(boundary_states) };
        self.condenser = None;
    }

    /// The configured condensation boundary, if any.
    pub fn condense_targets(&self) -> Option<&[usize]> {
        self.condense_boundary.as_deref()
    }

    /// Prepares the cache for a restarted worker whose topology was
    /// verified unchanged (the checkpoint's [`StructureDescriptor`]
    /// matches): the symbolic structures are kept — saving the re-analysis
    /// the restart would otherwise pay — while all per-run numeric state
    /// (cached factor, condenser, warm start) is dropped and the counters
    /// are zeroed, since the supervisor has already absorbed them into its
    /// retired totals. Results are unaffected either way: structures
    /// rebuild deterministically from the first frame.
    pub fn retain_structures_for_restart(&mut self) {
        self.chol = None;
        self.condenser = None;
        self.warm = None;
        self.symbolic_builds = 0;
        self.symbolic_reuses = 0;
        self.warm_solves = 0;
        self.cold_solves = 0;
        self.refactor_reuse = 0;
        self.refactor_full = 0;
        self.condensed_solves = 0;
    }

    /// Whether symbolic structures are currently cached.
    pub fn has_structures(&self) -> bool {
        self.pattern.is_some()
    }

    /// Clones the warm-start profile out of the cache — the checkpointable
    /// half of a streaming worker's state. `None` until a solve succeeds.
    pub fn export_warm(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        self.warm.clone()
    }

    /// Seeds the warm-start profile from a checkpoint. Symbolic structures
    /// are *not* part of a checkpoint — they rebuild deterministically from
    /// the first frame's measurement layout (one `symbolic_builds` tick),
    /// after which the restored worker converges exactly as the
    /// uninterrupted one would (see the restart-parity test in
    /// `tests/parallel_determinism.rs`).
    pub fn restore_warm(&mut self, vm: Vec<f64>, va: Vec<f64>) {
        assert_eq!(vm.len(), va.len(), "warm profile vm/va length mismatch");
        self.warm = Some((vm, va));
    }

    /// Compact identity of the cached symbolic structures, recorded in
    /// checkpoints so a restored worker can verify that its rebuilt
    /// structures match what the lost worker was running with. `None`
    /// before the first cached solve.
    pub fn structure_descriptor(&self) -> Option<StructureDescriptor> {
        let jac = self.jac_buf.as_ref()?;
        let gain = self.gain_buf.as_ref()?;
        Some(StructureDescriptor {
            jacobian_rows: jac.nrows(),
            jacobian_nnz: jac.nnz(),
            gain_dim: gain.nrows(),
            gain_nnz: gain.nnz(),
        })
    }
}

/// Shape fingerprint of a [`SolveCache`]'s symbolic structures (checkpoint
/// metadata; the structures themselves rebuild deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureDescriptor {
    /// Jacobian row count (measurements).
    pub jacobian_rows: usize,
    /// Jacobian stored nonzeros.
    pub jacobian_nnz: usize,
    /// Gain-matrix dimension (state variables).
    pub gain_dim: usize,
    /// Gain-matrix stored nonzeros.
    pub gain_nnz: usize,
}

/// Mutable view into a [`SolveCache`]'s direct-solver state, handed to
/// [`WlsEstimator::solve_gain`] by the cached path.
struct DirectCtx<'a> {
    slot: &'a mut Option<SparseCholesky>,
    reuse: &'a mut u64,
    full: &'a mut u64,
    condense: Option<CondenseCtx<'a>>,
}

/// The Schur-condensation half of a [`DirectCtx`], present when the cache
/// carries condensation targets.
struct CondenseCtx<'a> {
    boundary: &'a [usize],
    slot: &'a mut Option<BoundaryCondenser>,
    solves: &'a mut u64,
}

/// Maps an SPD failure to the estimator-level "not observable" diagnosis,
/// anything else to a solver error — the shared mapping of every direct
/// gain-solve path (scalar, condensed, and the round-batched waves).
fn spd_err(e: LaError) -> WlsError {
    match e {
        LaError::NotPositiveDefinite { .. } => WlsError::NotObservable(e.to_string()),
        other => WlsError::Solver(other),
    }
}

/// A WLS estimator bound to one (sub)network and state-space convention.
#[derive(Debug, Clone)]
pub struct WlsEstimator {
    net: Network,
    ybus: Ybus,
    space: StateSpace,
    opts: WlsOptions,
}

impl WlsEstimator {
    /// Builds an estimator. When `set`s will carry a PMU angle reference use
    /// [`StateSpace::full`]; otherwise use a slack-referenced space.
    /// The options this estimator was built with.
    pub fn opts(&self) -> &WlsOptions {
        &self.opts
    }

    pub fn new(net: Network, space: StateSpace, opts: WlsOptions) -> Self {
        assert_eq!(space.n_buses(), net.n_buses(), "state space size mismatch");
        let ybus = {
            let _sp = pgse_obs::span("wls.ybus");
            Ybus::new(&net)
        };
        WlsEstimator { net, ybus, space, opts }
    }

    /// The network this estimator operates on.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The state-space convention in use.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// Runs Gauss–Newton WLS from a flat start.
    ///
    /// # Errors
    /// See [`WlsError`].
    pub fn estimate(&self, set: &MeasurementSet) -> Result<StateEstimate, WlsError> {
        self.estimate_from(set, None)
    }

    /// Runs WLS from the given warm-start profile `(vm, va)`.
    pub fn estimate_from(
        &self,
        set: &MeasurementSet,
        warm: Option<(&[f64], &[f64])>,
    ) -> Result<StateEstimate, WlsError> {
        let n = self.net.n_buses();
        if set.len() < self.space.dim() {
            return Err(WlsError::NotObservable(format!(
                "{} measurements for {} state variables",
                set.len(),
                self.space.dim()
            )));
        }
        let (mut vm, mut va) = match warm {
            Some((wm, wa)) => (wm.to_vec(), wa.to_vec()),
            None => (vec![1.0; n], vec![0.0; n]),
        };
        let z = set.values();
        let w = set.weights();

        let mut est_span = pgse_obs::span("wls.estimate");
        let mut solver_iterations = Vec::new();
        let mut last_step = f64::INFINITY;
        for iter in 1..=self.opts.max_iter {
            let mut iter_span = pgse_obs::span_at("wls.iteration", iter as u64);
            let (h, jac) = {
                let _sp = pgse_obs::span("wls.jacobian");
                let h = evaluate_h(&self.net, &self.ybus, set, &vm, &va);
                let jac = assemble_jacobian(&self.net, &self.ybus, set, &self.space, &vm, &va);
                (h, jac)
            };
            let r: Vec<f64> = z.iter().zip(&h).map(|(zi, hi)| zi - hi).collect();
            if iter == 1 {
                // Structural observability: every state variable must be
                // touched by at least one measurement, or the gain matrix is
                // singular no matter how the numbers fall.
                let mut touched = vec![false; self.space.dim()];
                for r in 0..jac.nrows() {
                    for &c in jac.row(r).0 {
                        touched[c] = true;
                    }
                }
                if let Some(hole) = touched.iter().position(|&t| !t) {
                    return Err(WlsError::NotObservable(format!(
                        "state variable {hole} has no incident measurement"
                    )));
                }
            }
            // rhs = Hᵀ W r
            let wr: Vec<f64> = r.iter().zip(&w).map(|(ri, wi)| ri * wi).collect();
            let mut rhs = vec![0.0; self.space.dim()];
            jac.spmv_transpose(&wr, &mut rhs);
            // Gain matrix G = Hᵀ W H.
            let gain = {
                let _sp = pgse_obs::span("wls.gain");
                jac.ata_weighted(&w)
            };

            let solve_span = pgse_obs::span("wls.gain_solve");
            let (dx, inner) = self.solve_gain(&gain, &rhs, None)?;
            drop(solve_span);
            solver_iterations.push(inner);
            iter_span.record("solver_iterations", inner);
            self.space.apply_update(&dx, &mut vm, &mut va);
            last_step = dx.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if last_step <= self.opts.tol {
                drop(iter_span);
                est_span.record("iterations", iter);
                est_span.record("converged", true);
                pgse_obs::counter_add("wls.gn_iterations", iter as u64);
                let h = evaluate_h(&self.net, &self.ybus, set, &vm, &va);
                let residuals: Vec<f64> = z.iter().zip(&h).map(|(zi, hi)| zi - hi).collect();
                let objective = residuals.iter().zip(&w).map(|(ri, wi)| ri * ri * wi).sum();
                return Ok(StateEstimate {
                    vm,
                    va,
                    iterations: iter,
                    objective,
                    residuals,
                    solver_iterations,
                });
            }
        }
        est_span.record("iterations", self.opts.max_iter);
        est_span.record("converged", false);
        pgse_obs::counter_add("wls.gn_iterations", self.opts.max_iter as u64);
        Err(WlsError::DidNotConverge { iterations: self.opts.max_iter, last_step })
    }

    /// Runs WLS with cross-frame structure reuse and cache-managed warm
    /// starts — the streaming hot path.
    ///
    /// An explicit `warm` profile wins; otherwise the cache's stored state
    /// from the previous successful solve is used; otherwise flat start.
    /// Symbolic structures (Jacobian pattern + gain structure) are reused
    /// across calls and rebuilt only when `set`'s structure changes.
    ///
    /// # Errors
    /// See [`WlsError`].
    pub fn estimate_cached(
        &self,
        set: &MeasurementSet,
        warm: Option<(&[f64], &[f64])>,
        cache: &mut SolveCache,
    ) -> Result<StateEstimate, WlsError> {
        let n = self.net.n_buses();
        if set.len() < self.space.dim() {
            return Err(WlsError::NotObservable(format!(
                "{} measurements for {} state variables",
                set.len(),
                self.space.dim()
            )));
        }

        self.prepare_structures(set, cache)?;

        let warm_used = warm.is_some() || cache.warm.is_some();
        let (mut vm, mut va) = match (warm, &cache.warm) {
            (Some((wm, wa)), _) => (wm.to_vec(), wa.to_vec()),
            (None, Some((wm, wa))) => (wm.clone(), wa.clone()),
            (None, None) => (vec![1.0; n], vec![0.0; n]),
        };
        if warm_used {
            cache.warm_solves += 1;
            pgse_obs::counter_add("wls.warm_starts", 1);
        } else {
            cache.cold_solves += 1;
        }
        let z = set.values();
        let w = set.weights();

        let mut est_span = pgse_obs::span("wls.estimate");
        est_span.record("warm", warm_used);
        est_span.record("cached", true);
        let mut solver_iterations = Vec::new();
        let mut last_step = f64::INFINITY;
        let SolveCache {
            pattern,
            gain_sym,
            jac_buf,
            gain_buf,
            chol,
            condense_boundary,
            condenser,
            warm: warm_slot,
            refactor_reuse,
            refactor_full,
            condensed_solves,
            ..
        } = cache;
        let pattern = pattern.as_ref().expect("built above");
        let gain_sym = gain_sym.as_ref().expect("built above");
        let jac = jac_buf.as_mut().expect("built above");
        let gain = gain_buf.as_mut().expect("built above");
        for iter in 1..=self.opts.max_iter {
            let mut iter_span = pgse_obs::span_at("wls.iteration", iter as u64);
            let h = {
                let _sp = pgse_obs::span("wls.jacobian");
                let h = evaluate_h(&self.net, &self.ybus, set, &vm, &va);
                pattern.assemble_into(&self.net, &self.ybus, set, &self.space, &vm, &va, jac);
                h
            };
            let r: Vec<f64> = z.iter().zip(&h).map(|(zi, hi)| zi - hi).collect();
            // rhs = Hᵀ W r
            let wr: Vec<f64> = r.iter().zip(&w).map(|(ri, wi)| ri * wi).collect();
            let mut rhs = vec![0.0; self.space.dim()];
            jac.spmv_transpose(&wr, &mut rhs);
            {
                let _sp = pgse_obs::span("wls.gain");
                gain_sym.compute_into(jac, &w, gain);
            }

            let solve_span = pgse_obs::span("wls.gain_solve");
            let (dx, inner) = self.solve_gain(
                gain,
                &rhs,
                Some(DirectCtx {
                    slot: &mut *chol,
                    reuse: &mut *refactor_reuse,
                    full: &mut *refactor_full,
                    condense: condense_boundary.as_ref().map(|b| CondenseCtx {
                        boundary: b.as_slice(),
                        slot: &mut *condenser,
                        solves: &mut *condensed_solves,
                    }),
                }),
            )?;
            drop(solve_span);
            solver_iterations.push(inner);
            iter_span.record("solver_iterations", inner);
            self.space.apply_update(&dx, &mut vm, &mut va);
            last_step = dx.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if last_step <= self.opts.tol {
                drop(iter_span);
                est_span.record("iterations", iter);
                est_span.record("converged", true);
                pgse_obs::counter_add("wls.gn_iterations", iter as u64);
                let h = evaluate_h(&self.net, &self.ybus, set, &vm, &va);
                let residuals: Vec<f64> = z.iter().zip(&h).map(|(zi, hi)| zi - hi).collect();
                let objective = residuals.iter().zip(&w).map(|(ri, wi)| ri * ri * wi).sum();
                *warm_slot = Some((vm.clone(), va.clone()));
                return Ok(StateEstimate {
                    vm,
                    va,
                    iterations: iter,
                    objective,
                    residuals,
                    solver_iterations,
                });
            }
        }
        est_span.record("iterations", self.opts.max_iter);
        est_span.record("converged", false);
        pgse_obs::counter_add("wls.gn_iterations", self.opts.max_iter as u64);
        Err(WlsError::DidNotConverge { iterations: self.opts.max_iter, last_step })
    }

    /// (Re)builds the cache's symbolic structures when the set's shape or
    /// the network topology (Ybus pattern) changed. The Ybus check is what
    /// keeps a cached direct factor from being numerically refreshed
    /// against a stale structure after a topology change.
    fn prepare_structures(
        &self,
        set: &MeasurementSet,
        cache: &mut SolveCache,
    ) -> Result<(), WlsError> {
        let rebuild = match &cache.pattern {
            Some(p) => !p.matches(set, &self.ybus),
            None => true,
        };
        if rebuild {
            let _sp = pgse_obs::span("wls.symbolic");
            let pattern = JacobianPattern::new(&self.net, &self.ybus, set, &self.space);
            let jac = pattern.template();
            // Structural observability on the cached pattern: it is a
            // superset of any numeric Jacobian's pattern, so a hole here is
            // a hole in every frame.
            let mut touched = vec![false; self.space.dim()];
            for &c in jac.col_idx() {
                touched[c] = true;
            }
            if let Some(hole) = touched.iter().position(|&t| !t) {
                return Err(WlsError::NotObservable(format!(
                    "state variable {hole} has no incident measurement"
                )));
            }
            let sym = AtaSymbolic::new(&jac);
            cache.gain_buf = Some(sym.g_template());
            cache.jac_buf = Some(jac);
            cache.gain_sym = Some(sym);
            cache.pattern = Some(pattern);
            cache.chol = None;
            cache.condenser = None;
            cache.symbolic_builds += 1;
            pgse_obs::counter_add("wls.symbolic.build", 1);
        } else {
            cache.symbolic_reuses += 1;
            pgse_obs::counter_add("wls.symbolic.reuse", 1);
        }
        Ok(())
    }

    /// Opens a resumable Gauss–Newton solve whose gain systems are solved
    /// *externally* — the round-batching hook: a scheduler collects the
    /// `(gain, rhs)` systems of many concurrent waves, solves them through
    /// one pattern-grouped batched call (`sparsela::BatchPlan`), and feeds
    /// each step back with [`GnWave::note_solved`] + [`GnWave::apply_step`].
    ///
    /// The wave performs exactly the per-iteration floating-point sequence
    /// of [`WlsEstimator::estimate_cached`] with [`GainSolver::Direct`], so
    /// driving an area through a wave (with a bitwise-identical external
    /// solver) yields bitwise-identical states. Cache bookkeeping
    /// (symbolic build/reuse, warm/cold, refactor counters) matches the
    /// cached path tick for tick.
    ///
    /// On return the first iteration is already assembled: `gain()`/`rhs()`
    /// hold the first system.
    ///
    /// # Errors
    /// See [`WlsError`] — the same preamble rejections as the cached path.
    pub fn wave_begin<'a>(
        &'a self,
        set: &'a MeasurementSet,
        warm: Option<(&[f64], &[f64])>,
        cache: &'a mut SolveCache,
    ) -> Result<GnWave<'a>, WlsError> {
        let n = self.net.n_buses();
        if set.len() < self.space.dim() {
            return Err(WlsError::NotObservable(format!(
                "{} measurements for {} state variables",
                set.len(),
                self.space.dim()
            )));
        }
        self.prepare_structures(set, cache)?;
        let warm_used = warm.is_some() || cache.warm.is_some();
        let (vm, va) = match (warm, &cache.warm) {
            (Some((wm, wa)), _) => (wm.to_vec(), wa.to_vec()),
            (None, Some((wm, wa))) => (wm.clone(), wa.clone()),
            (None, None) => (vec![1.0; n], vec![0.0; n]),
        };
        if warm_used {
            cache.warm_solves += 1;
            pgse_obs::counter_add("wls.warm_starts", 1);
        } else {
            cache.cold_solves += 1;
        }
        let mut wave = GnWave {
            est: self,
            set,
            cache,
            vm,
            va,
            rhs: Vec::new(),
            solver_iterations: Vec::new(),
            iter: 0,
            last_step: f64::INFINITY,
            converged: false,
        };
        wave.assemble();
        Ok(wave)
    }

    /// Solves one gain system `G·Δx = rhs` with the configured solver,
    /// returning the step and the inner-solver iteration count. `direct`
    /// carries the cached-factor slot and refactorization counters of the
    /// cached path; without it the [`GainSolver::Direct`] solver factors
    /// from scratch every call.
    fn solve_gain(
        &self,
        gain: &Csr,
        rhs: &[f64],
        direct: Option<DirectCtx<'_>>,
    ) -> Result<(Vec<f64>, usize), WlsError> {
        match self.opts.solver {
            GainSolver::Cholesky => {
                let chol = EnvelopeCholesky::factor(gain).map_err(spd_err)?;
                Ok((chol.solve(rhs), 0usize))
            }
            GainSolver::Direct => {
                let Some(ctx) = direct else {
                    let chol = SparseCholesky::factor(gain).map_err(spd_err)?;
                    pgse_obs::counter_add("wls.refactor.full", 1);
                    return Ok((chol.solve(rhs), 0usize));
                };
                if let Some(c) = ctx.condense {
                    // Schur-condensed path: solve through the boundary
                    // block, refreshing the cached condensation numerically
                    // on warm frames. A failed refresh or build falls back
                    // to the plain factorization below — the condensation
                    // is an accelerator, never a new failure mode.
                    let mut reused = false;
                    if let Some(cond) = c.slot.as_mut() {
                        if cond.refresh(gain).is_ok() {
                            reused = true;
                        } else {
                            *c.slot = None;
                        }
                    }
                    if !reused {
                        *c.slot = BoundaryCondenser::new(gain, c.boundary).ok();
                    }
                    if let Some(cond) = c.slot.as_ref() {
                        if reused {
                            *ctx.reuse += 1;
                            pgse_obs::counter_add("wls.refactor.reuse", 1);
                        } else {
                            *ctx.full += 1;
                            pgse_obs::counter_add("wls.refactor.full", 1);
                        }
                        *c.solves += 1;
                        pgse_obs::counter_add("wls.condensed", 1);
                        return Ok((cond.solve(rhs), 0usize));
                    }
                }
                let reusable =
                    ctx.slot.as_ref().map(|c| c.pattern_matches(gain)).unwrap_or(false);
                if reusable {
                    let chol = ctx.slot.as_mut().expect("checked above");
                    if let Err(e) = chol.refactor(gain) {
                        // The values turned indefinite (or similar): drop
                        // the factor so the next frame starts clean, and
                        // fail this solve like a from-scratch one would.
                        *ctx.slot = None;
                        return Err(spd_err(e));
                    }
                    *ctx.reuse += 1;
                    pgse_obs::counter_add("wls.refactor.reuse", 1);
                    Ok((chol.solve(rhs), 0usize))
                } else {
                    let chol = SparseCholesky::factor(gain).map_err(spd_err)?;
                    *ctx.full += 1;
                    pgse_obs::counter_add("wls.refactor.full", 1);
                    let x = chol.solve(rhs);
                    *ctx.slot = Some(chol);
                    Ok((x, 0usize))
                }
            }
            GainSolver::Pcg { precond, parallel } => {
                let m = match precond {
                    PrecondKind::Identity => Preconditioner::Identity,
                    PrecondKind::Jacobi => Preconditioner::jacobi(gain)
                        .map_err(|e| WlsError::NotObservable(e.to_string()))?,
                    PrecondKind::Ic0 => Preconditioner::ic0(gain)
                        .map_err(|e| WlsError::NotObservable(e.to_string()))?,
                };
                let cg_opts = CgOptions { parallel, ..self.opts.cg };
                let out = pcg(gain, rhs, &m, &cg_opts).map_err(WlsError::Solver)?;
                Ok((out.x, out.iterations))
            }
        }
    }
}

/// One area's in-flight Gauss–Newton solve with the linear solves
/// externalized, created by [`WlsEstimator::wave_begin`]. The driver loop
/// is:
///
/// 1. read [`GnWave::gain`] / [`GnWave::rhs`] (collect across waves),
/// 2. solve externally (e.g. one batched round across all areas),
/// 3. [`GnWave::note_solved`] + [`GnWave::apply_step`] — which assembles
///    the next iteration unless the wave is [`GnWave::done`],
/// 4. when done, [`GnWave::finish`] closes the solve exactly as
///    `estimate_cached` would (residuals, objective, warm-state update,
///    `wls.gn_iterations`).
pub struct GnWave<'a> {
    est: &'a WlsEstimator,
    set: &'a MeasurementSet,
    cache: &'a mut SolveCache,
    vm: Vec<f64>,
    va: Vec<f64>,
    rhs: Vec<f64>,
    solver_iterations: Vec<usize>,
    iter: usize,
    last_step: f64,
    converged: bool,
}

impl<'a> GnWave<'a> {
    /// Assembles the next iteration's Jacobian, right-hand side, and gain
    /// matrix into the cache buffers.
    fn assemble(&mut self) {
        self.iter += 1;
        let est = self.est;
        let pattern = self.cache.pattern.as_ref().expect("prepared by wave_begin");
        let gain_sym = self.cache.gain_sym.as_ref().expect("prepared by wave_begin");
        let jac = self.cache.jac_buf.as_mut().expect("prepared by wave_begin");
        let gain = self.cache.gain_buf.as_mut().expect("prepared by wave_begin");
        let h = {
            let _sp = pgse_obs::span("wls.jacobian");
            let h = evaluate_h(&est.net, &est.ybus, self.set, &self.vm, &self.va);
            pattern.assemble_into(&est.net, &est.ybus, self.set, &est.space, &self.vm, &self.va, jac);
            h
        };
        let z = self.set.values();
        let w = self.set.weights();
        let wr: Vec<f64> =
            z.iter().zip(&h).zip(&w).map(|((zi, hi), wi)| (zi - hi) * wi).collect();
        self.rhs = vec![0.0; est.space.dim()];
        jac.spmv_transpose(&wr, &mut self.rhs);
        {
            let _sp = pgse_obs::span("wls.gain");
            gain_sym.compute_into(jac, &w, gain);
        }
    }

    /// The current iteration's gain matrix `G = HᵀWH`.
    pub fn gain(&self) -> &Csr {
        self.cache.gain_buf.as_ref().expect("assembled")
    }

    /// The current iteration's right-hand side `HᵀWr`.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Records how the external solver handled this iteration's system —
    /// `symbolic_reused: true` for a numeric pass over a cached symbolic
    /// analysis (the batched analogue of a factor refresh), `false` for a
    /// full analysis — keeping the cache's
    /// `refactor_reuse + refactor_full == gn_iterations` identity exact.
    pub fn note_solved(&mut self, symbolic_reused: bool) {
        if symbolic_reused {
            self.cache.refactor_reuse += 1;
            pgse_obs::counter_add("wls.refactor.reuse", 1);
        } else {
            self.cache.refactor_full += 1;
            pgse_obs::counter_add("wls.refactor.full", 1);
        }
    }

    /// Applies the externally solved step `Δx`, then assembles the next
    /// iteration unless converged or out of iterations. Returns
    /// [`GnWave::done`].
    pub fn apply_step(&mut self, dx: &[f64]) -> bool {
        self.solver_iterations.push(0);
        self.est.space.apply_update(dx, &mut self.vm, &mut self.va);
        self.last_step = dx.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        self.converged = self.last_step <= self.est.opts.tol;
        if !self.done() {
            self.assemble();
        }
        self.done()
    }

    /// Whether the wave needs no further solves (converged or exhausted).
    pub fn done(&self) -> bool {
        self.converged || self.iter >= self.est.opts.max_iter
    }

    /// Gauss–Newton iterations assembled so far.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Maps an external solver failure for this wave's system to the
    /// estimator-level error the scalar path would report.
    pub fn solver_error(e: LaError) -> WlsError {
        spd_err(e)
    }

    /// Closes the solve: on convergence computes residuals and objective,
    /// stores the warm state in the cache, and returns the estimate —
    /// exactly what `estimate_cached` does. Ticks `wls.gn_iterations`
    /// either way.
    ///
    /// # Errors
    /// [`WlsError::DidNotConverge`] when the iteration budget ran out.
    pub fn finish(self) -> Result<StateEstimate, WlsError> {
        pgse_obs::counter_add("wls.gn_iterations", self.iter as u64);
        if !self.converged {
            return Err(WlsError::DidNotConverge {
                iterations: self.iter,
                last_step: self.last_step,
            });
        }
        let est = self.est;
        let z = self.set.values();
        let w = self.set.weights();
        let h = evaluate_h(&est.net, &est.ybus, self.set, &self.vm, &self.va);
        let residuals: Vec<f64> = z.iter().zip(&h).map(|(zi, hi)| zi - hi).collect();
        let objective = residuals.iter().zip(&w).map(|(ri, wi)| ri * ri * wi).sum();
        self.cache.warm = Some((self.vm.clone(), self.va.clone()));
        Ok(StateEstimate {
            vm: self.vm,
            va: self.va,
            iterations: self.iter,
            objective,
            residuals,
            solver_iterations: self.solver_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{FlowSide, Measurement, MeasurementKind};
    use pgse_grid::cases::ieee14;
    use pgse_powerflow::{solve, PfOptions};

    /// Exact (noise-free) measurement set from the solved power flow.
    fn exact_set(net: &pgse_grid::Network, pmu_buses: &[usize]) -> MeasurementSet {
        let sol = solve(net, &PfOptions::default()).unwrap();
        let mut set = MeasurementSet::new();
        for i in 0..net.n_buses() {
            set.push(Measurement::new(MeasurementKind::Vmag { bus: i }, sol.vm[i], 0.004));
            set.push(Measurement::new(MeasurementKind::Pinj { bus: i }, sol.p_inj[i], 0.01));
            set.push(Measurement::new(MeasurementKind::Qinj { bus: i }, sol.q_inj[i], 0.01));
        }
        for (k, f) in sol.flows.iter().enumerate() {
            set.push(Measurement::new(
                MeasurementKind::Pflow { branch: k, side: FlowSide::From },
                f.p_from,
                0.008,
            ));
            set.push(Measurement::new(
                MeasurementKind::Qflow { branch: k, side: FlowSide::From },
                f.q_from,
                0.008,
            ));
        }
        for &b in pmu_buses {
            set.push(Measurement::new(MeasurementKind::PmuVmag { bus: b }, sol.vm[b], 0.002));
            set.push(Measurement::new(MeasurementKind::PmuAngle { bus: b }, sol.va[b], 0.001));
        }
        set
    }

    #[test]
    fn zero_noise_recovers_exact_state_slack_referenced() {
        let net = ieee14();
        let truth = solve(&net, &PfOptions::default()).unwrap();
        let set = exact_set(&net, &[]);
        let est = WlsEstimator::new(
            net.clone(),
            StateSpace::with_reference(14, net.slack()),
            WlsOptions::default(),
        );
        let out = est.estimate(&set).unwrap();
        assert!(out.vm_rmse(&truth.vm) < 1e-7, "vm rmse {}", out.vm_rmse(&truth.vm));
        assert!(out.va_rmse(&truth.va) < 1e-7, "va rmse {}", out.va_rmse(&truth.va));
        assert!(out.objective < 1e-8);
    }

    #[test]
    fn zero_noise_recovers_exact_state_pmu_referenced() {
        let net = ieee14();
        let truth = solve(&net, &PfOptions::default()).unwrap();
        let set = exact_set(&net, &[0, 5]);
        let est = WlsEstimator::new(net, StateSpace::full(14), WlsOptions::default());
        let out = est.estimate(&set).unwrap();
        assert!(out.vm_rmse(&truth.vm) < 1e-7);
        assert!(out.va_rmse(&truth.va) < 1e-7);
    }

    #[test]
    fn pcg_and_cholesky_agree() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let space = || StateSpace::with_reference(14, 0);
        let pcg_est = WlsEstimator::new(net.clone(), space(), WlsOptions::default());
        let chol_est = WlsEstimator::new(
            net,
            space(),
            WlsOptions { solver: GainSolver::Cholesky, ..WlsOptions::default() },
        );
        let a = pcg_est.estimate(&set).unwrap();
        let b = chol_est.estimate(&set).unwrap();
        for i in 0..14 {
            assert!((a.vm[i] - b.vm[i]).abs() < 1e-8);
            assert!((a.va[i] - b.va[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn all_preconditioners_converge() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        for precond in [PrecondKind::Identity, PrecondKind::Jacobi, PrecondKind::Ic0] {
            let est = WlsEstimator::new(
                net.clone(),
                StateSpace::with_reference(14, 0),
                WlsOptions { solver: GainSolver::pcg(precond), ..WlsOptions::default() },
            );
            let out = est.estimate(&set);
            assert!(out.is_ok(), "{precond:?} failed: {:?}", out.err());
        }
    }

    #[test]
    fn ic0_needs_fewest_inner_iterations() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let run = |precond| {
            let est = WlsEstimator::new(
                net.clone(),
                StateSpace::with_reference(14, 0),
                WlsOptions { solver: GainSolver::pcg(precond), ..WlsOptions::default() },
            );
            let out = est.estimate(&set).unwrap();
            out.solver_iterations.iter().sum::<usize>()
        };
        let ident = run(PrecondKind::Identity);
        let ic0 = run(PrecondKind::Ic0);
        assert!(ic0 < ident, "ic0 {ic0} !< identity {ident}");
    }

    #[test]
    fn parallel_estimator_records_pool_activity() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        // IEEE-14's state dimension is far below the default thresholds, so
        // lower them to force the parallel kernels onto the pool. Harmless
        // to concurrent tests: the parallel kernels are bitwise identical
        // to the sequential ones, only the execution path changes.
        pgse_sparsela::tuning::set_par_rows_threshold(1);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let rec = pgse_obs::Recorder::new("t");
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        assert!(matches!(est.opts().solver, GainSolver::Pcg { parallel: true, .. }));
        let before_chunks = rayon::chunks_executed();
        let before_ops = rayon::parallel_ops();
        let out = pool.install(|| pgse_obs::with_recorder(&rec, || est.estimate(&set))).unwrap();
        assert!(out.iterations > 0);
        assert!(
            rayon::parallel_ops() > before_ops && rayon::chunks_executed() > before_chunks,
            "parallel estimator ran no work on the thread pool"
        );
        let snap = rec.snapshot();
        assert!(snap.metrics.counter("pcg.parallel_solves") >= 1);
        assert_eq!(snap.metrics.counter("pcg.parallel_solves"), snap.metrics.counter("pcg.solves"));
    }

    #[test]
    fn underdetermined_set_is_rejected() {
        let net = ieee14();
        let set: MeasurementSet =
            [Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.0, 0.01)].into_iter().collect();
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        assert!(matches!(est.estimate(&set), Err(WlsError::NotObservable(_))));
    }

    #[test]
    fn unobservable_island_is_detected() {
        // Plenty of measurements, but none touching buses 9-13's angles
        // beyond magnitude: delete all injections/flows involving the
        // 6-11-10-9-14-13-12 region except magnitudes.
        let net = ieee14();
        let mut set = exact_set(&net, &[]);
        let cut: Vec<usize> = vec![5, 8, 9, 10, 11, 12, 13];
        set.retain(|m| match m.kind {
            MeasurementKind::Pinj { bus } | MeasurementKind::Qinj { bus } => !cut.contains(&bus),
            MeasurementKind::Pflow { branch, .. } | MeasurementKind::Qflow { branch, .. } => {
                let br = &net.branches[branch];
                !cut.contains(&br.from) && !cut.contains(&br.to)
            }
            _ => true,
        });
        // Keep enough raw count that only observability (rank), not the
        // count check, can reject.
        while set.len() < 27 {
            set.push(Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.06, 0.004));
        }
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        assert!(est.estimate(&set).is_err());
    }

    #[test]
    fn cached_solve_matches_uncached() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        let plain = est.estimate(&set).unwrap();
        let mut cache = SolveCache::new();
        let cached = est.estimate_cached(&set, None, &mut cache).unwrap();
        for i in 0..14 {
            assert!((plain.vm[i] - cached.vm[i]).abs() < 1e-8);
            assert!((plain.va[i] - cached.va[i]).abs() < 1e-8);
        }
        assert_eq!(cache.symbolic_builds, 1);
        assert_eq!(cache.symbolic_reuses, 0);
        assert_eq!(cache.cold_solves, 1);
    }

    #[test]
    fn cache_reuses_structures_and_warm_state_across_frames() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        let mut cache = SolveCache::new();
        let first = est.estimate_cached(&set, None, &mut cache).unwrap();
        let second = est.estimate_cached(&set, None, &mut cache).unwrap();
        assert_eq!(cache.symbolic_builds, 1, "structures built once");
        assert_eq!(cache.symbolic_reuses, 1);
        assert_eq!(cache.warm_solves, 1, "second frame warm-starts from the first");
        assert!(
            second.iterations <= first.iterations,
            "warm {} !<= cold {}",
            second.iterations,
            first.iterations
        );
        assert!(cache.warm_state().is_some());
    }

    #[test]
    fn cache_rebuilds_on_structure_change() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est = WlsEstimator::new(
            net.clone(),
            StateSpace::with_reference(14, 0),
            WlsOptions::default(),
        );
        let mut cache = SolveCache::new();
        est.estimate_cached(&set, None, &mut cache).unwrap();
        // Drop one measurement: different structure, must rebuild and still
        // agree with the uncached estimator on the modified set.
        let mut smaller = set.clone();
        smaller.remove(1);
        let cached = est.estimate_cached(&smaller, None, &mut cache).unwrap();
        assert_eq!(cache.symbolic_builds, 2);
        let plain = est.estimate(&smaller).unwrap();
        for i in 0..14 {
            assert!((plain.vm[i] - cached.vm[i]).abs() < 1e-7);
            assert!((plain.va[i] - cached.va[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn cached_path_detects_unobservable_structure() {
        let net = ieee14();
        let set: MeasurementSet = (0..30)
            .map(|_| Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.06, 0.004))
            .collect();
        let est =
            WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::default());
        let mut cache = SolveCache::new();
        assert!(matches!(
            est.estimate_cached(&set, None, &mut cache),
            Err(WlsError::NotObservable(_))
        ));
    }

    #[test]
    fn direct_solver_agrees_with_pcg_and_envelope() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let space = || StateSpace::with_reference(14, 0);
        let direct = WlsEstimator::new(net.clone(), space(), WlsOptions::direct());
        let pcg_est = WlsEstimator::new(net, space(), WlsOptions::default());
        let a = direct.estimate(&set).unwrap();
        let b = pcg_est.estimate(&set).unwrap();
        for i in 0..14 {
            assert!((a.vm[i] - b.vm[i]).abs() < 1e-8);
            assert!((a.va[i] - b.va[i]).abs() < 1e-8);
        }
        // The direct solver reports no inner iterations.
        assert!(a.solver_iterations.iter().all(|&i| i == 0));
    }

    #[test]
    fn direct_cached_reuses_numeric_factor_and_counts_exactly() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est = WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::direct());
        let mut cache = SolveCache::new();
        let first = est.estimate_cached(&set, None, &mut cache).unwrap();
        // First frame: iteration 1 factors from scratch, later iterations
        // of the same frame already refresh the cached factor.
        assert_eq!(cache.refactor_full, 1);
        assert_eq!(cache.refactor_reuse, first.iterations as u64 - 1);
        let second = est.estimate_cached(&set, None, &mut cache).unwrap();
        // Warm frame: every gain solve is a numeric-only refresh, and each
        // Gauss–Newton iteration does exactly one gain solve.
        assert_eq!(cache.refactor_full, 1);
        assert_eq!(
            cache.refactor_reuse + cache.refactor_full,
            (first.iterations + second.iterations) as u64
        );
        // The cached result matches an uncached direct solve.
        let plain = est.estimate(&set).unwrap();
        for i in 0..14 {
            assert!((plain.vm[i] - second.vm[i]).abs() < 1e-8);
            assert!((plain.va[i] - second.va[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn ybus_pattern_change_forces_clean_refactor() {
        // The staleness pin at the estimator level: a topology change that
        // alters the Ybus pattern (same measurement set!) must rebuild the
        // symbolic structures and take a full factorization — never a
        // numeric refresh of the stale factor.
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est = WlsEstimator::new(
            net.clone(),
            StateSpace::with_reference(14, 0),
            WlsOptions::direct(),
        );
        let mut cache = SolveCache::new();
        est.estimate_cached(&set, None, &mut cache).unwrap();
        est.estimate_cached(&set, None, &mut cache).unwrap();
        assert_eq!(cache.symbolic_builds, 1);
        assert_eq!(cache.refactor_full, 1);
        let reuses_before = cache.refactor_reuse;

        // New branch → new Ybus pattern, measurement set unchanged.
        let mut grown = net.clone();
        let proto = grown.branches[0].clone();
        grown.branches.push(pgse_grid::Branch { from: 2, to: 11, ..proto });
        let est2 = WlsEstimator::new(
            grown,
            StateSpace::with_reference(14, 0),
            WlsOptions::direct(),
        );
        let out = est2.estimate_cached(&set, None, &mut cache).unwrap();
        assert_eq!(cache.symbolic_builds, 2, "Ybus change must rebuild structures");
        assert_eq!(cache.refactor_full, 2, "first solve after rebuild is a full factorization");
        assert!(cache.refactor_reuse > reuses_before, "later iterations refresh the new factor");
        // And the result matches a fresh estimator with no cache history.
        let fresh = est2.estimate(&set).unwrap();
        for i in 0..14 {
            assert!((out.vm[i] - fresh.vm[i]).abs() < 1e-7);
            assert!((out.va[i] - fresh.va[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn wave_driven_solve_matches_cached_direct_bitwise() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est = WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::direct());

        let mut cache_scalar = SolveCache::new();
        let scalar: Vec<StateEstimate> = (0..2)
            .map(|_| est.estimate_cached(&set, None, &mut cache_scalar).unwrap())
            .collect();

        let mut cache_wave = SolveCache::new();
        let mut plan = pgse_sparsela::BatchPlan::new();
        let mut waved: Vec<StateEstimate> = Vec::new();
        for _ in 0..2 {
            let mut wave = est.wave_begin(&set, None, &mut cache_wave).unwrap();
            loop {
                let out = plan.solve_round(&[(wave.gain(), wave.rhs())]);
                wave.note_solved(out.sym_reused[0]);
                let x = out.results.into_iter().next().unwrap().unwrap();
                if wave.apply_step(&x) {
                    break;
                }
            }
            waved.push(wave.finish().unwrap());
        }

        for (s, w) in scalar.iter().zip(&waved) {
            assert_eq!(s.iterations, w.iterations);
            for i in 0..14 {
                assert_eq!(s.vm[i].to_bits(), w.vm[i].to_bits(), "vm[{i}]");
                assert_eq!(s.va[i].to_bits(), w.va[i].to_bits(), "va[{i}]");
            }
        }
        // Cache bookkeeping matches the scalar path tick for tick.
        assert_eq!(cache_wave.symbolic_builds, cache_scalar.symbolic_builds);
        assert_eq!(cache_wave.symbolic_reuses, cache_scalar.symbolic_reuses);
        assert_eq!(cache_wave.warm_solves, cache_scalar.warm_solves);
        assert_eq!(cache_wave.cold_solves, cache_scalar.cold_solves);
        assert_eq!(cache_wave.refactor_full, cache_scalar.refactor_full);
        assert_eq!(cache_wave.refactor_reuse, cache_scalar.refactor_reuse);
        assert_eq!(
            cache_wave.refactor_reuse + cache_wave.refactor_full,
            (waved[0].iterations + waved[1].iterations) as u64
        );
        assert!(cache_wave.warm_state().is_some());
    }

    #[test]
    fn condensed_direct_solve_matches_plain_and_counts() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est = WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::direct());

        let mut plain_cache = SolveCache::new();
        let plain = est.estimate_cached(&set, None, &mut plain_cache).unwrap();

        // Condense everything except the first six state variables.
        let mut cond_cache = SolveCache::new();
        cond_cache.set_condense_targets((0..6).collect());
        assert_eq!(cond_cache.condense_targets(), Some(&(0..6).collect::<Vec<_>>()[..]));
        let first = est.estimate_cached(&set, None, &mut cond_cache).unwrap();
        let second = est.estimate_cached(&set, None, &mut cond_cache).unwrap();
        for i in 0..14 {
            assert!((plain.vm[i] - first.vm[i]).abs() < 1e-7, "vm[{i}]");
            assert!((plain.va[i] - first.va[i]).abs() < 1e-7, "va[{i}]");
        }
        // Every gain solve went through the condenser, and each still
        // ticked exactly one refactor counter.
        let total = (first.iterations + second.iterations) as u64;
        assert_eq!(cond_cache.condensed_solves, total);
        assert_eq!(cond_cache.refactor_reuse + cond_cache.refactor_full, total);
        assert_eq!(cond_cache.refactor_full, 1, "one build, then numeric refreshes");
    }

    #[test]
    fn restart_retention_keeps_structures_and_zeroes_counters() {
        let net = ieee14();
        let set = exact_set(&net, &[0]);
        let est = WlsEstimator::new(net, StateSpace::with_reference(14, 0), WlsOptions::direct());
        let mut cache = SolveCache::new();
        est.estimate_cached(&set, None, &mut cache).unwrap();
        let desc = cache.structure_descriptor().unwrap();
        cache.retain_structures_for_restart();
        assert!(cache.has_structures());
        assert_eq!(cache.structure_descriptor(), Some(desc));
        assert!(cache.warm_state().is_none());
        assert_eq!(cache.symbolic_builds, 0);
        assert_eq!(cache.refactor_reuse + cache.refactor_full, 0);
        // The next solve reuses the kept analysis instead of rebuilding.
        est.estimate_cached(&set, None, &mut cache).unwrap();
        assert_eq!(cache.symbolic_builds, 0);
        assert_eq!(cache.symbolic_reuses, 1);
        assert_eq!(cache.cold_solves, 1, "warm state does not survive a restart");
    }

    #[test]
    fn warm_start_converges_faster() {
        let net = ieee14();
        let truth = solve(&net, &PfOptions::default()).unwrap();
        let set = exact_set(&net, &[]);
        let est = WlsEstimator::new(
            net,
            StateSpace::with_reference(14, 0),
            WlsOptions::default(),
        );
        let cold = est.estimate(&set).unwrap();
        let warm = est.estimate_from(&set, Some((&truth.vm, &truth.va))).unwrap();
        assert!(warm.iterations <= cold.iterations);
    }
}

//! # pgse-estimation
//!
//! Weighted-least-squares (WLS) power-system state estimation — the paper's
//! core computational kernel.
//!
//! The estimator solves `min_x (z − h(x))ᵀ R⁻¹ (z − h(x))` by Gauss–Newton:
//! each iteration assembles the sparse measurement Jacobian `H`, forms the
//! gain matrix `G = HᵀR⁻¹H`, and solves `G·Δx = HᵀR⁻¹(z − h(x))` with
//! either the paper's parallel **PCG** solver or a direct sparse Cholesky
//! baseline.
//!
//! Modules:
//! * [`measurement`] — the measurement model (SCADA V/P/Q injections and
//!   flows, PMU phasors) and measurement sets;
//! * [`jacobian`] — `h(x)` evaluation and sparse `H(x)` assembly;
//! * [`wls`] — the Gauss–Newton WLS estimator with pluggable linear solver;
//! * [`telemetry`] — noisy measurement generation from a solved power flow,
//!   driven by the time-frame noise process `x = f(δt)` of §IV-B.2;
//! * [`baddata`] — chi-square detection and largest-normalized-residual
//!   identification of gross measurement errors;
//! * [`observability`] — numerical observability analysis;
//! * [`restoration`] — pseudo-measurement observability restoration after
//!   telemetry loss;
//! * [`itermodel`] — fitting the paper's iteration-count model
//!   `Ni = g1·x + g2`.

pub mod baddata;
pub mod itermodel;
pub mod jacobian;
pub mod measurement;
pub mod observability;
pub mod restoration;
pub mod telemetry;
pub mod wls;

pub use jacobian::{JacobianPattern, StateSpace};
pub use measurement::{Measurement, MeasurementKind, MeasurementSet};
// `telemetry` types are deliberately not re-exported at the crate root:
// synthetic-telemetry generation is a test/benchmark concern, and callers
// name it explicitly (`pgse_estimation::telemetry::TelemetryPlan`).
pub use wls::{
    GainSolver, GnWave, SolveCache, StateEstimate, StructureDescriptor, WlsError, WlsEstimator,
    WlsOptions,
};

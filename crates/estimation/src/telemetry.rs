//! Telemetry generation: noisy measurements sampled from a solved power
//! flow.
//!
//! The paper's estimators consume SCADA scans (every ~4 s) and PMU frames
//! (30/s); we have no field data, so telemetry is synthesized from the
//! ground-truth operating point with zero-mean Gaussian errors — the exact
//! statistical model the WLS formulation assumes.
//!
//! The per-frame noise *level* follows the paper's §IV-B.2: the mapping
//! method estimates the noise level `x = f(δt)` for each time frame and
//! predicts Gauss–Newton iterations as `Ni = g1·x + g2`. [`NoiseProcess`]
//! implements `f` as a diurnal profile plus seeded per-frame jitter.
//!
//! **Observability note:** this module *generates* telemetry (synthetic
//! measurements); it is no longer the place where run-time measurements of
//! the pipeline itself accumulate. Execution metrics — scan counts, noise
//! gauges, solver iterations, stage timings — are recorded through
//! `pgse-obs` ([`pgse_obs::counter_add`] / [`pgse_obs::gauge_set`] /
//! [`pgse_obs::span`]) and exported in the `ObsReport`; each
//! [`TelemetryPlan::generate`] call runs inside a `telemetry.generate`
//! span carrying the scan size and noise level.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pgse_grid::Network;
use pgse_powerflow::PfSolution;

use crate::measurement::{FlowSide, Measurement, MeasurementKind, MeasurementSet};

/// The time-frame noise process `x = f(δt)`.
#[derive(Debug, Clone)]
pub struct NoiseProcess {
    /// Baseline noise level (multiplies every σ); `1.0` is nominal accuracy.
    pub base_level: f64,
    /// Relative amplitude of the diurnal component.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal component in seconds.
    pub period_s: f64,
    /// Relative amplitude of the seeded per-frame jitter.
    pub jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for NoiseProcess {
    fn default() -> Self {
        NoiseProcess {
            base_level: 1.0,
            diurnal_amplitude: 0.5,
            period_s: 86_400.0,
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl NoiseProcess {
    /// The noise level at time frame `δt` (seconds since epoch of the run).
    ///
    /// Deterministic: the jitter is hashed from the frame index, so repeated
    /// calls agree and distributed components can evaluate `f` locally.
    pub fn level(&self, dt_seconds: f64) -> f64 {
        let diurnal = 1.0
            + self.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * dt_seconds / self.period_s).sin();
        let frame = (dt_seconds.max(0.0)) as u64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ frame.wrapping_mul(0x9e37_79b9));
        let j = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        (self.base_level * diurnal * j).max(0.05)
    }
}

/// Measurement standard deviations by class (p.u. / radians).
#[derive(Debug, Clone, Copy)]
pub struct SigmaSet {
    /// SCADA voltage magnitude.
    pub vmag: f64,
    /// SCADA P/Q injection.
    pub inj: f64,
    /// SCADA P/Q branch flow.
    pub flow: f64,
    /// PMU voltage magnitude.
    pub pmu_vmag: f64,
    /// PMU voltage angle.
    pub pmu_angle: f64,
}

impl Default for SigmaSet {
    fn default() -> Self {
        SigmaSet { vmag: 0.004, inj: 0.01, flow: 0.008, pmu_vmag: 0.002, pmu_angle: 0.001 }
    }
}

/// What to telemeter from a network.
#[derive(Debug, Clone)]
pub struct TelemetryPlan {
    /// Measure voltage magnitude at every bus.
    pub vmag_all: bool,
    /// Buses whose P/Q injections are measured (commonly all internal
    /// buses; DSE omits boundary buses whose injections involve tie lines
    /// outside the local model).
    pub injection_buses: Vec<usize>,
    /// Branches measured at the from side (P and Q).
    pub flow_branches_from: Vec<usize>,
    /// Branches measured at the to side (P and Q).
    pub flow_branches_to: Vec<usize>,
    /// PMU sites (voltage magnitude + synchronized angle).
    pub pmu_buses: Vec<usize>,
    /// Accuracy classes.
    pub sigmas: SigmaSet,
}

impl TelemetryPlan {
    /// The full-SCADA plan: V everywhere, injections everywhere, from-side
    /// flows on every branch, PMUs at the given buses.
    pub fn full(net: &Network, pmu_buses: Vec<usize>) -> Self {
        TelemetryPlan {
            vmag_all: true,
            injection_buses: (0..net.n_buses()).collect(),
            flow_branches_from: (0..net.n_branches()).collect(),
            flow_branches_to: Vec::new(),
            pmu_buses,
            sigmas: SigmaSet::default(),
        }
    }

    /// Number of measurements this plan produces.
    pub fn len(&self, net: &Network) -> usize {
        (if self.vmag_all { net.n_buses() } else { 0 })
            + 2 * self.injection_buses.len()
            + 2 * self.flow_branches_from.len()
            + 2 * self.flow_branches_to.len()
            + 2 * self.pmu_buses.len()
    }

    /// Generates a noisy measurement set from the solved operating point.
    ///
    /// `noise_level` scales every σ (both the sampling noise and the σ
    /// recorded in the measurement, since the telemetry system knows its own
    /// accuracy class). `seed` makes the scan reproducible.
    pub fn generate(
        &self,
        net: &Network,
        sol: &PfSolution,
        noise_level: f64,
        seed: u64,
    ) -> MeasurementSet {
        assert!(noise_level > 0.0, "noise level must be positive");
        let mut sp = pgse_obs::span("telemetry.generate");
        sp.record("noise_level", noise_level);
        pgse_obs::counter_add("telemetry.scans", 1);
        pgse_obs::gauge_set("telemetry.noise_level", noise_level);
        let mut rng = StdRng::seed_from_u64(seed);
        // Box–Muller standard normal.
        let mut gauss = move || {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut set = MeasurementSet::new();
        let mut add = |kind: MeasurementKind, truth: f64, sigma: f64| {
            let s = sigma * noise_level;
            set.push(Measurement::new(kind, truth + s * gauss(), s));
        };
        if self.vmag_all {
            for i in 0..net.n_buses() {
                add(MeasurementKind::Vmag { bus: i }, sol.vm[i], self.sigmas.vmag);
            }
        }
        for &b in &self.injection_buses {
            add(MeasurementKind::Pinj { bus: b }, sol.p_inj[b], self.sigmas.inj);
            add(MeasurementKind::Qinj { bus: b }, sol.q_inj[b], self.sigmas.inj);
        }
        for &k in &self.flow_branches_from {
            add(
                MeasurementKind::Pflow { branch: k, side: FlowSide::From },
                sol.flows[k].p_from,
                self.sigmas.flow,
            );
            add(
                MeasurementKind::Qflow { branch: k, side: FlowSide::From },
                sol.flows[k].q_from,
                self.sigmas.flow,
            );
        }
        for &k in &self.flow_branches_to {
            add(
                MeasurementKind::Pflow { branch: k, side: FlowSide::To },
                sol.flows[k].p_to,
                self.sigmas.flow,
            );
            add(
                MeasurementKind::Qflow { branch: k, side: FlowSide::To },
                sol.flows[k].q_to,
                self.sigmas.flow,
            );
        }
        for &b in &self.pmu_buses {
            add(MeasurementKind::PmuVmag { bus: b }, sol.vm[b], self.sigmas.pmu_vmag);
            add(MeasurementKind::PmuAngle { bus: b }, sol.va[b], self.sigmas.pmu_angle);
        }
        sp.record("scan_size", set.len());
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgse_grid::cases::ieee14;
    use pgse_powerflow::{solve, PfOptions};

    #[test]
    fn noise_level_is_deterministic_and_positive() {
        let p = NoiseProcess::default();
        for t in [0.0, 100.0, 3600.0, 40_000.0, 86_400.0] {
            let a = p.level(t);
            let b = p.level(t);
            assert_eq!(a, b);
            assert!(a > 0.0);
        }
    }

    #[test]
    fn noise_level_varies_over_the_day() {
        let p = NoiseProcess { jitter: 0.0, ..NoiseProcess::default() };
        let morning = p.level(86_400.0 / 4.0); // sin = 1 → high
        let evening = p.level(3.0 * 86_400.0 / 4.0); // sin = −1 → low
        assert!(morning > evening);
        assert!((morning - 1.5).abs() < 1e-9);
        assert!((evening - 0.5).abs() < 1e-9);
    }

    #[test]
    fn plan_len_matches_generated_count() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let plan = TelemetryPlan::full(&net, vec![0, 6]);
        let set = plan.generate(&net, &sol, 1.0, 42);
        assert_eq!(set.len(), plan.len(&net));
        // 14 V + 28 inj + 40 flows + 4 PMU
        assert_eq!(set.len(), 86);
    }

    #[test]
    fn generation_is_reproducible_per_seed() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let plan = TelemetryPlan::full(&net, vec![0]);
        let a = plan.generate(&net, &sol, 1.0, 7);
        let b = plan.generate(&net, &sol, 1.0, 7);
        assert_eq!(a.values(), b.values());
        let c = plan.generate(&net, &sol, 1.0, 8);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn noise_scales_with_level() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let plan = TelemetryPlan::full(&net, vec![]);
        let low = plan.generate(&net, &sol, 0.5, 3);
        let high = plan.generate(&net, &sol, 4.0, 3);
        // Same seed → same normal draws → deviations scale exactly 8×.
        let truth = plan.generate(&net, &sol, 1e-9, 3);
        let dev = |s: &MeasurementSet| -> f64 {
            s.values()
                .iter()
                .zip(truth.values())
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
        };
        let ratio = dev(&high) / dev(&low);
        assert!((ratio - 8.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn recorded_sigma_matches_sampling_sigma() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let plan = TelemetryPlan::full(&net, vec![]);
        let set = plan.generate(&net, &sol, 2.0, 1);
        // First measurement is a Vmag with σ = 0.004 × 2.
        assert!((set.as_slice()[0].sigma - 0.008).abs() < 1e-15);
    }

    #[test]
    fn empty_plan_generates_nothing() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let plan = TelemetryPlan {
            vmag_all: false,
            injection_buses: vec![],
            flow_branches_from: vec![],
            flow_branches_to: vec![],
            pmu_buses: vec![],
            sigmas: SigmaSet::default(),
        };
        assert!(plan.generate(&net, &sol, 1.0, 0).is_empty());
    }
}

//! The paper's iteration-count model `Ni = g1·x + g2`.
//!
//! §IV-B.2 models the Gauss–Newton iteration count of a subsystem as an
//! affine function of the measurement noise level `x` (for their 14-bus
//! subsystem the empirical fit was `g1 = 3.7579`, `g2 = 5.2464`). The
//! mapping method evaluates this model each time frame to set the vertex
//! weights of the decomposition graph. We re-fit the constants on our own
//! telemetry by ordinary least squares.

/// The fitted affine iteration model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationModel {
    /// Slope `g1`.
    pub g1: f64,
    /// Intercept `g2`.
    pub g2: f64,
}

impl IterationModel {
    /// The paper's empirical constants for a 14-bus subsystem.
    pub const PAPER_14BUS: IterationModel = IterationModel { g1: 3.7579, g2: 5.2464 };

    /// Predicted iteration count at noise level `x`, clamped to at least 1.
    pub fn predict(&self, x: f64) -> f64 {
        (self.g1 * x + self.g2).max(1.0)
    }
}

/// Ordinary least-squares fit of `y ≈ g1·x + g2`.
///
/// Returns the model together with the coefficient of determination `R²`.
///
/// # Panics
/// Panics when fewer than two samples are supplied or all `x` are equal.
pub fn fit_affine(samples: &[(f64, f64)]) -> (IterationModel, f64) {
    assert!(samples.len() >= 2, "need at least two samples");
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate fit: all x equal");
    let g1 = (n * sxy - sx * sy) / denom;
    let g2 = (sy - g1 * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = samples.iter().map(|s| (s.1 - mean_y) * (s.1 - mean_y)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|s| {
            let e = s.1 - (g1 * s.0 + g2);
            e * e
        })
        .sum();
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    (IterationModel { g1, g2 }, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let samples: Vec<(f64, f64)> =
            (0..10).map(|i| (i as f64, 3.7579 * i as f64 + 5.2464)).collect();
        let (m, r2) = fit_affine(&samples);
        assert!((m.g1 - 3.7579).abs() < 1e-9);
        assert!((m.g2 - 5.2464).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_fits_approximately() {
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64 * 0.1;
                (x, 2.0 * x + 4.0 + 0.05 * ((i * 31 % 17) as f64 - 8.0))
            })
            .collect();
        let (m, r2) = fit_affine(&samples);
        assert!((m.g1 - 2.0).abs() < 0.1);
        assert!((m.g2 - 4.0).abs() < 0.3);
        assert!(r2 > 0.95);
    }

    #[test]
    fn predict_clamps_at_one() {
        let m = IterationModel { g1: 1.0, g2: -5.0 };
        assert_eq!(m.predict(0.0), 1.0);
        assert_eq!(m.predict(10.0), 5.0);
    }

    #[test]
    fn paper_constants_available() {
        let m = IterationModel::PAPER_14BUS;
        // The paper's example: a 14-bus subsystem at nominal noise.
        assert!((m.predict(1.0) - 9.0043).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_sample_panics() {
        fit_affine(&[(1.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn constant_x_panics() {
        fit_affine(&[(1.0, 2.0), (1.0, 3.0)]);
    }
}

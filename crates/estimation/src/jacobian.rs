//! State space, `h(x)` evaluation, and sparse Jacobian assembly.
//!
//! The state is the polar voltage at every bus: angles `θ` and magnitudes
//! `V`. Two reference conventions are supported:
//!
//! * **Slack-referenced** ([`StateSpace::with_reference`]): one bus angle is
//!   fixed (classical centralized SE);
//! * **PMU-referenced** ([`StateSpace::full`]): all angles are unknowns and
//!   synchronized PMU angle measurements anchor the frame — the convention
//!   the distributed estimator relies on (Jiang et al. [5]).

use pgse_grid::{BranchAdmittance, Network, Ybus};
use pgse_powerflow::equations::{
    branch_flows, bus_injections, from_flow_derivatives, injection_derivatives,
};
use pgse_sparsela::{Coo, Csr};

use crate::measurement::{FlowSide, MeasurementKind, MeasurementSet};

/// Maps bus angles/magnitudes to positions in the state vector.
#[derive(Debug, Clone)]
pub struct StateSpace {
    n: usize,
    /// Angle-variable position per bus; `usize::MAX` for the reference bus.
    th_pos: Vec<usize>,
    /// Magnitude-variable position per bus.
    v_pos: Vec<usize>,
    /// The fixed-angle reference bus, if any.
    ref_bus: Option<usize>,
    dim: usize,
}

impl StateSpace {
    /// All angles and magnitudes unknown (PMU-anchored frame).
    pub fn full(n: usize) -> Self {
        let th_pos: Vec<usize> = (0..n).collect();
        let v_pos: Vec<usize> = (n..2 * n).collect();
        StateSpace { n, th_pos, v_pos, ref_bus: None, dim: 2 * n }
    }

    /// Angle at `ref_bus` fixed to zero; all other angles and every
    /// magnitude unknown.
    pub fn with_reference(n: usize, ref_bus: usize) -> Self {
        assert!(ref_bus < n, "reference bus out of range");
        let mut th_pos = vec![usize::MAX; n];
        let mut k = 0usize;
        for (i, pos) in th_pos.iter_mut().enumerate() {
            if i != ref_bus {
                *pos = k;
                k += 1;
            }
        }
        let v_pos: Vec<usize> = (k..k + n).collect();
        StateSpace { n, th_pos, v_pos, ref_bus: Some(ref_bus), dim: 2 * n - 1 }
    }

    /// Number of buses.
    pub fn n_buses(&self) -> usize {
        self.n
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The fixed-angle reference bus, if any.
    pub fn ref_bus(&self) -> Option<usize> {
        self.ref_bus
    }

    /// State-vector position of bus `i`'s angle, if it is a variable.
    pub fn angle_pos(&self, i: usize) -> Option<usize> {
        let p = self.th_pos[i];
        (p != usize::MAX).then_some(p)
    }

    /// State-vector position of bus `i`'s magnitude.
    pub fn mag_pos(&self, i: usize) -> usize {
        self.v_pos[i]
    }

    /// Applies the update `x ← x + Δx` onto the voltage profile.
    pub fn apply_update(&self, dx: &[f64], vm: &mut [f64], va: &mut [f64]) {
        debug_assert_eq!(dx.len(), self.dim);
        for i in 0..self.n {
            if let Some(p) = self.angle_pos(i) {
                va[i] += dx[p];
            }
            vm[i] += dx[self.v_pos[i]];
        }
    }
}

/// Evaluates `h(x)`: the model-predicted value of each measurement at the
/// voltage profile `(vm, va)`.
pub fn evaluate_h(
    net: &Network,
    ybus: &Ybus,
    set: &MeasurementSet,
    vm: &[f64],
    va: &[f64],
) -> Vec<f64> {
    let (p, q) = bus_injections(ybus, vm, va);
    let flows = branch_flows(net, vm, va);
    set.as_slice()
        .iter()
        .map(|m| match m.kind {
            MeasurementKind::Vmag { bus } | MeasurementKind::PmuVmag { bus } => vm[bus],
            MeasurementKind::PmuAngle { bus } => va[bus],
            MeasurementKind::Pinj { bus } => p[bus],
            MeasurementKind::Qinj { bus } => q[bus],
            MeasurementKind::Pflow { branch, side } => match side {
                FlowSide::From => flows[branch].p_from,
                FlowSide::To => flows[branch].p_to,
            },
            MeasurementKind::Qflow { branch, side } => match side {
                FlowSide::From => flows[branch].q_from,
                FlowSide::To => flows[branch].q_to,
            },
        })
        .collect()
}

/// Assembles the sparse measurement Jacobian `H = ∂h/∂x` at `(vm, va)`.
pub fn assemble_jacobian(
    net: &Network,
    ybus: &Ybus,
    set: &MeasurementSet,
    space: &StateSpace,
    vm: &[f64],
    va: &[f64],
) -> Csr {
    let (p, q) = bus_injections(ybus, vm, va);
    let mut coo = Coo::with_capacity(set.len(), space.dim(), 8 * set.len());

    let push_angle = |coo: &mut Coo, row: usize, bus: usize, v: f64| {
        if let Some(col) = space.angle_pos(bus) {
            coo.push(row, col, v);
        }
    };

    for (row, m) in set.as_slice().iter().enumerate() {
        match m.kind {
            MeasurementKind::Vmag { bus } | MeasurementKind::PmuVmag { bus } => {
                coo.push(row, space.mag_pos(bus), 1.0);
            }
            MeasurementKind::PmuAngle { bus } => {
                push_angle(&mut coo, row, bus, 1.0);
            }
            MeasurementKind::Pinj { bus } | MeasurementKind::Qinj { bus } => {
                let is_p = matches!(m.kind, MeasurementKind::Pinj { .. });
                let (cols, _) = ybus.row(bus);
                for &j in cols {
                    let (dp_dth, dp_dv, dq_dth, dq_dv) =
                        injection_derivatives(ybus, vm, va, p[bus], q[bus], bus, j);
                    let (dth, dv) = if is_p { (dp_dth, dp_dv) } else { (dq_dth, dq_dv) };
                    push_angle(&mut coo, row, j, dth);
                    coo.push(row, space.mag_pos(j), dv);
                }
            }
            MeasurementKind::Pflow { branch, side } | MeasurementKind::Qflow { branch, side } => {
                let is_p = matches!(m.kind, MeasurementKind::Pflow { .. });
                let br = &net.branches[branch];
                let y = BranchAdmittance::of(br);
                // The to side is the from side of the reversed two-port.
                let (yy, f, t) = match side {
                    FlowSide::From => (y, br.from, br.to),
                    FlowSide::To => (
                        BranchAdmittance { yff: y.ytt, yft: y.ytf, ytf: y.yft, ytt: y.yff },
                        br.to,
                        br.from,
                    ),
                };
                let (dp, dq) = from_flow_derivatives(&yy, vm[f], vm[t], va[f] - va[t]);
                let d = if is_p { dp } else { dq };
                push_angle(&mut coo, row, f, d[0]);
                coo.push(row, space.mag_pos(f), d[1]);
                push_angle(&mut coo, row, t, d[2]);
                coo.push(row, space.mag_pos(t), d[3]);
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;
    use pgse_grid::cases::ieee14;

    fn profile(n: usize) -> (Vec<f64>, Vec<f64>) {
        let vm: Vec<f64> = (0..n).map(|i| 1.0 + 0.03 * ((i as f64) * 0.9).sin()).collect();
        let va: Vec<f64> = (0..n).map(|i| 0.04 * ((i as f64) * 1.1).cos()).collect();
        (vm, va)
    }

    fn all_kinds_set() -> MeasurementSet {
        [
            Measurement::new(MeasurementKind::Vmag { bus: 3 }, 1.0, 0.004),
            Measurement::new(MeasurementKind::PmuVmag { bus: 0 }, 1.0, 0.002),
            Measurement::new(MeasurementKind::PmuAngle { bus: 0 }, 0.0, 0.001),
            Measurement::new(MeasurementKind::Pinj { bus: 4 }, 0.0, 0.01),
            Measurement::new(MeasurementKind::Qinj { bus: 8 }, 0.0, 0.01),
            Measurement::new(MeasurementKind::Pflow { branch: 2, side: FlowSide::From }, 0.0, 0.008),
            Measurement::new(MeasurementKind::Pflow { branch: 2, side: FlowSide::To }, 0.0, 0.008),
            Measurement::new(MeasurementKind::Qflow { branch: 9, side: FlowSide::From }, 0.0, 0.008),
            Measurement::new(MeasurementKind::Qflow { branch: 9, side: FlowSide::To }, 0.0, 0.008),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn state_space_dimensions() {
        let full = StateSpace::full(14);
        assert_eq!(full.dim(), 28);
        assert_eq!(full.angle_pos(0), Some(0));
        let refd = StateSpace::with_reference(14, 0);
        assert_eq!(refd.dim(), 27);
        assert_eq!(refd.angle_pos(0), None);
        assert_eq!(refd.angle_pos(1), Some(0));
        assert_eq!(refd.mag_pos(0), 13);
    }

    #[test]
    fn apply_update_respects_reference() {
        let space = StateSpace::with_reference(3, 1);
        let mut vm = vec![1.0; 3];
        let mut va = vec![0.0; 3];
        let dx = vec![0.01, 0.02, 0.1, 0.2, 0.3];
        space.apply_update(&dx, &mut vm, &mut va);
        assert_eq!(va, vec![0.01, 0.0, 0.02]);
        assert_eq!(vm, vec![1.1, 1.2, 1.3]);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set = all_kinds_set();
        let space = StateSpace::full(14);
        let (vm, va) = profile(14);
        let h0 = evaluate_h(&net, &ybus, &set, &vm, &va);
        let jac = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
        let eps = 1e-6;
        for col in 0..space.dim() {
            let mut vmp = vm.clone();
            let mut vap = va.clone();
            let mut dx = vec![0.0; space.dim()];
            dx[col] = eps;
            space.apply_update(&dx, &mut vmp, &mut vap);
            let hp = evaluate_h(&net, &ybus, &set, &vmp, &vap);
            for row in 0..set.len() {
                let fd = (hp[row] - h0[row]) / eps;
                let an = jac.get(row, col);
                assert!(
                    (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                    "H[{row}][{col}]: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn reference_column_is_absent() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set = all_kinds_set();
        let space = StateSpace::with_reference(14, 0);
        let (vm, va) = profile(14);
        let jac = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
        assert_eq!(jac.ncols(), 27);
        assert_eq!(jac.nrows(), set.len());
    }

    #[test]
    fn direct_measurements_have_unit_rows() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set: MeasurementSet =
            [Measurement::new(MeasurementKind::Vmag { bus: 5 }, 1.0, 0.01)].into_iter().collect();
        let space = StateSpace::full(14);
        let (vm, va) = profile(14);
        let jac = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
        assert_eq!(jac.nnz(), 1);
        assert_eq!(jac.get(0, space.mag_pos(5)), 1.0);
    }
}

//! State space, `h(x)` evaluation, and sparse Jacobian assembly.
//!
//! The state is the polar voltage at every bus: angles `θ` and magnitudes
//! `V`. Two reference conventions are supported:
//!
//! * **Slack-referenced** ([`StateSpace::with_reference`]): one bus angle is
//!   fixed (classical centralized SE);
//! * **PMU-referenced** ([`StateSpace::full`]): all angles are unknowns and
//!   synchronized PMU angle measurements anchor the frame — the convention
//!   the distributed estimator relies on (Jiang et al. \[5\]).

use pgse_grid::{BranchAdmittance, Network, Ybus};
use pgse_powerflow::equations::{
    branch_flows, bus_injections, from_flow_derivatives, injection_derivatives,
};
use pgse_sparsela::{Coo, Csr};

use crate::measurement::{FlowSide, MeasurementKind, MeasurementSet};

/// Maps bus angles/magnitudes to positions in the state vector.
#[derive(Debug, Clone)]
pub struct StateSpace {
    n: usize,
    /// Angle-variable position per bus; `usize::MAX` for the reference bus.
    th_pos: Vec<usize>,
    /// Magnitude-variable position per bus.
    v_pos: Vec<usize>,
    /// The fixed-angle reference bus, if any.
    ref_bus: Option<usize>,
    dim: usize,
}

impl StateSpace {
    /// All angles and magnitudes unknown (PMU-anchored frame).
    pub fn full(n: usize) -> Self {
        let th_pos: Vec<usize> = (0..n).collect();
        let v_pos: Vec<usize> = (n..2 * n).collect();
        StateSpace { n, th_pos, v_pos, ref_bus: None, dim: 2 * n }
    }

    /// Angle at `ref_bus` fixed to zero; all other angles and every
    /// magnitude unknown.
    pub fn with_reference(n: usize, ref_bus: usize) -> Self {
        assert!(ref_bus < n, "reference bus out of range");
        let mut th_pos = vec![usize::MAX; n];
        let mut k = 0usize;
        for (i, pos) in th_pos.iter_mut().enumerate() {
            if i != ref_bus {
                *pos = k;
                k += 1;
            }
        }
        let v_pos: Vec<usize> = (k..k + n).collect();
        StateSpace { n, th_pos, v_pos, ref_bus: Some(ref_bus), dim: 2 * n - 1 }
    }

    /// Number of buses.
    pub fn n_buses(&self) -> usize {
        self.n
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The fixed-angle reference bus, if any.
    pub fn ref_bus(&self) -> Option<usize> {
        self.ref_bus
    }

    /// State-vector position of bus `i`'s angle, if it is a variable.
    pub fn angle_pos(&self, i: usize) -> Option<usize> {
        let p = self.th_pos[i];
        (p != usize::MAX).then_some(p)
    }

    /// State-vector position of bus `i`'s magnitude.
    pub fn mag_pos(&self, i: usize) -> usize {
        self.v_pos[i]
    }

    /// Applies the update `x ← x + Δx` onto the voltage profile.
    pub fn apply_update(&self, dx: &[f64], vm: &mut [f64], va: &mut [f64]) {
        debug_assert_eq!(dx.len(), self.dim);
        for i in 0..self.n {
            if let Some(p) = self.angle_pos(i) {
                va[i] += dx[p];
            }
            vm[i] += dx[self.v_pos[i]];
        }
    }
}

/// Evaluates `h(x)`: the model-predicted value of each measurement at the
/// voltage profile `(vm, va)`.
pub fn evaluate_h(
    net: &Network,
    ybus: &Ybus,
    set: &MeasurementSet,
    vm: &[f64],
    va: &[f64],
) -> Vec<f64> {
    let (p, q) = bus_injections(ybus, vm, va);
    let flows = branch_flows(net, vm, va);
    set.as_slice()
        .iter()
        .map(|m| match m.kind {
            MeasurementKind::Vmag { bus } | MeasurementKind::PmuVmag { bus } => vm[bus],
            MeasurementKind::PmuAngle { bus } => va[bus],
            MeasurementKind::Pinj { bus } => p[bus],
            MeasurementKind::Qinj { bus } => q[bus],
            MeasurementKind::Pflow { branch, side } => match side {
                FlowSide::From => flows[branch].p_from,
                FlowSide::To => flows[branch].p_to,
            },
            MeasurementKind::Qflow { branch, side } => match side {
                FlowSide::From => flows[branch].q_from,
                FlowSide::To => flows[branch].q_to,
            },
        })
        .collect()
}

/// Walks every Jacobian entry at `(vm, va)` in the canonical assembly
/// order, feeding `(row, col, value)` to `sink`. The *order and positions*
/// of the emitted entries depend only on the measurement kinds, the Ybus
/// pattern, and the state space — never on the values — which is what lets
/// [`JacobianPattern`] replay a recorded emission order frame after frame.
fn for_each_jacobian_entry(
    net: &Network,
    ybus: &Ybus,
    set: &MeasurementSet,
    space: &StateSpace,
    vm: &[f64],
    va: &[f64],
    sink: &mut dyn FnMut(usize, usize, f64),
) {
    let (p, q) = bus_injections(ybus, vm, va);

    for (row, m) in set.as_slice().iter().enumerate() {
        let push_angle = |sink: &mut dyn FnMut(usize, usize, f64), bus: usize, v: f64| {
            if let Some(col) = space.angle_pos(bus) {
                sink(row, col, v);
            }
        };
        match m.kind {
            MeasurementKind::Vmag { bus } | MeasurementKind::PmuVmag { bus } => {
                sink(row, space.mag_pos(bus), 1.0);
            }
            MeasurementKind::PmuAngle { bus } => {
                push_angle(sink, bus, 1.0);
            }
            MeasurementKind::Pinj { bus } | MeasurementKind::Qinj { bus } => {
                let is_p = matches!(m.kind, MeasurementKind::Pinj { .. });
                let (cols, _) = ybus.row(bus);
                for &j in cols {
                    let (dp_dth, dp_dv, dq_dth, dq_dv) =
                        injection_derivatives(ybus, vm, va, p[bus], q[bus], bus, j);
                    let (dth, dv) = if is_p { (dp_dth, dp_dv) } else { (dq_dth, dq_dv) };
                    push_angle(sink, j, dth);
                    sink(row, space.mag_pos(j), dv);
                }
            }
            MeasurementKind::Pflow { branch, side } | MeasurementKind::Qflow { branch, side } => {
                let is_p = matches!(m.kind, MeasurementKind::Pflow { .. });
                let br = &net.branches[branch];
                let y = BranchAdmittance::of(br);
                // The to side is the from side of the reversed two-port.
                let (yy, f, t) = match side {
                    FlowSide::From => (y, br.from, br.to),
                    FlowSide::To => (
                        BranchAdmittance { yff: y.ytt, yft: y.ytf, ytf: y.yft, ytt: y.yff },
                        br.to,
                        br.from,
                    ),
                };
                let (dp, dq) = from_flow_derivatives(&yy, vm[f], vm[t], va[f] - va[t]);
                let d = if is_p { dp } else { dq };
                push_angle(sink, f, d[0]);
                sink(row, space.mag_pos(f), d[1]);
                push_angle(sink, t, d[2]);
                sink(row, space.mag_pos(t), d[3]);
            }
        }
    }
}

/// Assembles the sparse measurement Jacobian `H = ∂h/∂x` at `(vm, va)`.
pub fn assemble_jacobian(
    net: &Network,
    ybus: &Ybus,
    set: &MeasurementSet,
    space: &StateSpace,
    vm: &[f64],
    va: &[f64],
) -> Csr {
    let mut coo = Coo::with_capacity(set.len(), space.dim(), 8 * set.len());
    for_each_jacobian_entry(net, ybus, set, space, vm, va, &mut |r, c, v| coo.push(r, c, v));
    coo.to_csr()
}

/// A cheap structural fingerprint of a measurement set: FNV-1a over the
/// kinds and their indices (values/sigmas excluded — they change every
/// frame without changing the Jacobian pattern).
pub fn set_fingerprint(set: &MeasurementSet) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    };
    for m in set.as_slice() {
        let (tag, a, b) = match m.kind {
            MeasurementKind::Vmag { bus } => (1u64, bus as u64, 0),
            MeasurementKind::PmuVmag { bus } => (2, bus as u64, 0),
            MeasurementKind::PmuAngle { bus } => (3, bus as u64, 0),
            MeasurementKind::Pinj { bus } => (4, bus as u64, 0),
            MeasurementKind::Qinj { bus } => (5, bus as u64, 0),
            MeasurementKind::Pflow { branch, side } => {
                (6, branch as u64, matches!(side, FlowSide::To) as u64)
            }
            MeasurementKind::Qflow { branch, side } => {
                (7, branch as u64, matches!(side, FlowSide::To) as u64)
            }
        };
        eat(tag);
        eat(a);
        eat(b);
    }
    eat(set.len() as u64);
    h
}

/// A structural fingerprint of an admittance matrix: FNV-1a over the
/// dimension and the per-row column indices (values excluded — parameter
/// changes on an unchanged topology keep the Jacobian pattern valid). A
/// topology change that adds or removes Ybus entries changes this hash,
/// which is what lets a cached [`JacobianPattern`] detect that its
/// structure is stale even when the measurement set itself is unchanged.
pub fn ybus_fingerprint(ybus: &Ybus) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    };
    eat(ybus.dim() as u64);
    for i in 0..ybus.dim() {
        let (cols, _) = ybus.row(i);
        eat(cols.len() as u64);
        for &c in cols {
            eat(c as u64);
        }
    }
    h
}

/// The cached sparsity pattern of one measurement Jacobian.
///
/// Built once per (topology, telemetry-plan) pair, it records the CSR
/// structure of `H` *including structural zeros* (entries whose derivative
/// happens to vanish at a particular operating point are kept as explicit
/// zeros, so the pattern is stable across frames) plus a permutation from
/// canonical emission order to CSR value slots. A warm-frame assembly is
/// then a zero-fill plus one scatter pass — no COO sort, no dedup, no
/// allocation.
#[derive(Debug, Clone)]
pub struct JacobianPattern {
    fingerprint: u64,
    ybus_fp: u64,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// Emission order → CSR value index (duplicates map to the same slot
    /// and accumulate).
    perm: Vec<usize>,
    ncols: usize,
}

impl JacobianPattern {
    /// Runs the symbolic pass: replays the assembly at a flat profile and
    /// records where every emission lands.
    pub fn new(net: &Network, ybus: &Ybus, set: &MeasurementSet, space: &StateSpace) -> Self {
        let n = space.n_buses();
        let (vm, va) = (vec![1.0; n], vec![0.0; n]);
        let mut pushes: Vec<(usize, usize)> = Vec::with_capacity(8 * set.len());
        for_each_jacobian_entry(net, ybus, set, space, &vm, &va, &mut |r, c, _| {
            pushes.push((r, c));
        });

        // Per-row sorted-unique columns.
        let nrows = set.len();
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); nrows];
        for &(r, c) in &pushes {
            per_row[r].push(c);
        }
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(pushes.len());
        for cols in &mut per_row {
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(cols);
            row_ptr.push(col_idx.len());
        }

        // Emission order → value slot.
        let perm = pushes
            .iter()
            .map(|&(r, c)| {
                let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
                lo + col_idx[lo..hi].binary_search(&c).expect("column recorded above")
            })
            .collect();

        JacobianPattern {
            fingerprint: set_fingerprint(set),
            ybus_fp: ybus_fingerprint(ybus),
            row_ptr,
            col_idx,
            perm,
            ncols: space.dim(),
        }
    }

    /// Whether `set` and `ybus` still have the structure this pattern was
    /// built from. Both inputs shape the Jacobian: a topology change that
    /// alters the Ybus pattern invalidates the cache even when the
    /// measurement set is unchanged (the staleness hole the
    /// refactorization-reuse path must never fall into).
    pub fn matches(&self, set: &MeasurementSet, ybus: &Ybus) -> bool {
        set.len() + 1 == self.row_ptr.len()
            && set_fingerprint(set) == self.fingerprint
            && ybus_fingerprint(ybus) == self.ybus_fp
    }

    /// Stored entries (structural zeros included).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// An all-zero Jacobian with this structure — the reusable buffer for
    /// [`JacobianPattern::assemble_into`].
    pub fn template(&self) -> Csr {
        Csr::from_raw(
            self.row_ptr.len() - 1,
            self.ncols,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            vec![0.0; self.col_idx.len()],
        )
    }

    /// Numeric assembly at `(vm, va)` scattered into `jac`, which must
    /// carry this pattern (see [`JacobianPattern::template`]).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_into(
        &self,
        net: &Network,
        ybus: &Ybus,
        set: &MeasurementSet,
        space: &StateSpace,
        vm: &[f64],
        va: &[f64],
        jac: &mut Csr,
    ) {
        assert_eq!(jac.nnz(), self.col_idx.len(), "JacobianPattern: buffer nnz");
        assert_eq!(jac.row_ptr(), self.row_ptr.as_slice(), "JacobianPattern: buffer pattern");
        debug_assert!(self.matches(set, ybus), "JacobianPattern: set/ybus mismatch");
        for v in jac.values_mut() {
            *v = 0.0;
        }
        let mut k = 0usize;
        let perm = &self.perm;
        {
            let vals = jac.values_mut();
            for_each_jacobian_entry(net, ybus, set, space, vm, va, &mut |_, _, v| {
                vals[perm[k]] += v;
                k += 1;
            });
        }
        assert_eq!(k, perm.len(), "JacobianPattern: emission count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;
    use pgse_grid::cases::ieee14;

    fn profile(n: usize) -> (Vec<f64>, Vec<f64>) {
        let vm: Vec<f64> = (0..n).map(|i| 1.0 + 0.03 * ((i as f64) * 0.9).sin()).collect();
        let va: Vec<f64> = (0..n).map(|i| 0.04 * ((i as f64) * 1.1).cos()).collect();
        (vm, va)
    }

    fn all_kinds_set() -> MeasurementSet {
        [
            Measurement::new(MeasurementKind::Vmag { bus: 3 }, 1.0, 0.004),
            Measurement::new(MeasurementKind::PmuVmag { bus: 0 }, 1.0, 0.002),
            Measurement::new(MeasurementKind::PmuAngle { bus: 0 }, 0.0, 0.001),
            Measurement::new(MeasurementKind::Pinj { bus: 4 }, 0.0, 0.01),
            Measurement::new(MeasurementKind::Qinj { bus: 8 }, 0.0, 0.01),
            Measurement::new(MeasurementKind::Pflow { branch: 2, side: FlowSide::From }, 0.0, 0.008),
            Measurement::new(MeasurementKind::Pflow { branch: 2, side: FlowSide::To }, 0.0, 0.008),
            Measurement::new(MeasurementKind::Qflow { branch: 9, side: FlowSide::From }, 0.0, 0.008),
            Measurement::new(MeasurementKind::Qflow { branch: 9, side: FlowSide::To }, 0.0, 0.008),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn state_space_dimensions() {
        let full = StateSpace::full(14);
        assert_eq!(full.dim(), 28);
        assert_eq!(full.angle_pos(0), Some(0));
        let refd = StateSpace::with_reference(14, 0);
        assert_eq!(refd.dim(), 27);
        assert_eq!(refd.angle_pos(0), None);
        assert_eq!(refd.angle_pos(1), Some(0));
        assert_eq!(refd.mag_pos(0), 13);
    }

    #[test]
    fn apply_update_respects_reference() {
        let space = StateSpace::with_reference(3, 1);
        let mut vm = vec![1.0; 3];
        let mut va = vec![0.0; 3];
        let dx = vec![0.01, 0.02, 0.1, 0.2, 0.3];
        space.apply_update(&dx, &mut vm, &mut va);
        assert_eq!(va, vec![0.01, 0.0, 0.02]);
        assert_eq!(vm, vec![1.1, 1.2, 1.3]);
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set = all_kinds_set();
        let space = StateSpace::full(14);
        let (vm, va) = profile(14);
        let h0 = evaluate_h(&net, &ybus, &set, &vm, &va);
        let jac = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
        let eps = 1e-6;
        for col in 0..space.dim() {
            let mut vmp = vm.clone();
            let mut vap = va.clone();
            let mut dx = vec![0.0; space.dim()];
            dx[col] = eps;
            space.apply_update(&dx, &mut vmp, &mut vap);
            let hp = evaluate_h(&net, &ybus, &set, &vmp, &vap);
            for row in 0..set.len() {
                let fd = (hp[row] - h0[row]) / eps;
                let an = jac.get(row, col);
                assert!(
                    (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                    "H[{row}][{col}]: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn reference_column_is_absent() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set = all_kinds_set();
        let space = StateSpace::with_reference(14, 0);
        let (vm, va) = profile(14);
        let jac = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
        assert_eq!(jac.ncols(), 27);
        assert_eq!(jac.nrows(), set.len());
    }

    #[test]
    fn pattern_assembly_matches_fresh_assembly() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set = all_kinds_set();
        let space = StateSpace::full(14);
        let pattern = JacobianPattern::new(&net, &ybus, &set, &space);
        assert!(pattern.matches(&set, &ybus));
        let mut jac = pattern.template();
        // Two different operating points through the same cached pattern.
        for phase in [0.9, 1.7] {
            let vm: Vec<f64> =
                (0..14).map(|i| 1.0 + 0.03 * ((i as f64) * phase).sin()).collect();
            let va: Vec<f64> = (0..14).map(|i| 0.04 * ((i as f64) * 1.1).cos()).collect();
            pattern.assemble_into(&net, &ybus, &set, &space, &vm, &va, &mut jac);
            let fresh = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
            for r in 0..set.len() {
                for c in 0..space.dim() {
                    assert!(
                        (jac.get(r, c) - fresh.get(r, c)).abs() < 1e-14,
                        "H[{r}][{c}] cached {} vs fresh {}",
                        jac.get(r, c),
                        fresh.get(r, c)
                    );
                }
            }
        }
    }

    #[test]
    fn pattern_detects_changed_set_structure() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set = all_kinds_set();
        let space = StateSpace::full(14);
        let pattern = JacobianPattern::new(&net, &ybus, &set, &space);

        // Same values, different structure → mismatch.
        let mut grown = set.clone();
        grown.push(Measurement::new(MeasurementKind::Vmag { bus: 7 }, 1.0, 0.01));
        assert!(!pattern.matches(&grown, &ybus));

        // Same structure, different values → still matches.
        let mut renoised = set.clone();
        renoised.retain(|_| true);
        assert!(pattern.matches(&renoised, &ybus));
        assert_eq!(set_fingerprint(&set), set_fingerprint(&renoised));
    }

    #[test]
    fn pattern_detects_changed_ybus_structure() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set = all_kinds_set();
        let space = StateSpace::full(14);
        let pattern = JacobianPattern::new(&net, &ybus, &set, &space);
        assert!(pattern.matches(&set, &ybus));

        // A topology change (new branch) with the *same* measurement set
        // must invalidate the cached pattern: the Jacobian of any injection
        // measurement at the touched buses gains entries.
        let mut grown = net.clone();
        let proto = grown.branches[0].clone();
        grown.branches.push(pgse_grid::Branch { from: 2, to: 11, ..proto });
        let ybus2 = Ybus::new(&grown);
        assert_ne!(ybus_fingerprint(&ybus), ybus_fingerprint(&ybus2));
        assert!(!pattern.matches(&set, &ybus2));
    }

    #[test]
    fn direct_measurements_have_unit_rows() {
        let net = ieee14();
        let ybus = Ybus::new(&net);
        let set: MeasurementSet =
            [Measurement::new(MeasurementKind::Vmag { bus: 5 }, 1.0, 0.01)].into_iter().collect();
        let space = StateSpace::full(14);
        let (vm, va) = profile(14);
        let jac = assemble_jacobian(&net, &ybus, &set, &space, &vm, &va);
        assert_eq!(jac.nnz(), 1);
        assert_eq!(jac.get(0, space.mag_pos(5)), 1.0);
    }
}

//! The measurement model.
//!
//! The paper's data sources are "power flow-injections and voltage
//! magnitudes", plus phasor data where PMUs are installed (§II). Each
//! measurement carries its standard deviation; WLS weights are `1/σ²`.

use serde::{Deserialize, Serialize};

/// Which side of a branch a flow measurement is taken at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowSide {
    /// Metering at the from terminal.
    From,
    /// Metering at the to terminal.
    To,
}

/// The physical quantity a measurement observes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MeasurementKind {
    /// SCADA voltage magnitude at a bus (p.u.).
    Vmag { bus: usize },
    /// Active power injection at a bus (p.u.).
    Pinj { bus: usize },
    /// Reactive power injection at a bus (p.u.).
    Qinj { bus: usize },
    /// Active power flow on a branch (p.u.).
    Pflow { branch: usize, side: FlowSide },
    /// Reactive power flow on a branch (p.u.).
    Qflow { branch: usize, side: FlowSide },
    /// PMU voltage magnitude at a bus (p.u.) — higher accuracy than SCADA.
    PmuVmag { bus: usize },
    /// PMU voltage angle at a bus (radians), synchronized to the global
    /// reference — this is what lets distributed estimators share a frame.
    PmuAngle { bus: usize },
}

impl MeasurementKind {
    /// The bus this measurement is physically attached to (the from/to bus
    /// for flow measurements).
    pub fn site(&self, branches: &[pgse_grid::Branch]) -> usize {
        match *self {
            MeasurementKind::Vmag { bus }
            | MeasurementKind::Pinj { bus }
            | MeasurementKind::Qinj { bus }
            | MeasurementKind::PmuVmag { bus }
            | MeasurementKind::PmuAngle { bus } => bus,
            MeasurementKind::Pflow { branch, side } | MeasurementKind::Qflow { branch, side } => {
                let br = &branches[branch];
                match side {
                    FlowSide::From => br.from,
                    FlowSide::To => br.to,
                }
            }
        }
    }

    /// True for PMU (synchrophasor) measurements.
    pub fn is_pmu(&self) -> bool {
        matches!(
            self,
            MeasurementKind::PmuVmag { .. } | MeasurementKind::PmuAngle { .. }
        )
    }
}

/// One measurement: a kind, the telemetered value, and its accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// What is measured.
    pub kind: MeasurementKind,
    /// Telemetered value (p.u., or radians for angles).
    pub value: f64,
    /// Standard deviation of the measurement error.
    pub sigma: f64,
}

impl Measurement {
    /// Creates a measurement.
    ///
    /// # Panics
    /// Panics if `sigma` is not strictly positive.
    pub fn new(kind: MeasurementKind, value: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "measurement sigma must be positive");
        Measurement { kind, value, sigma }
    }

    /// WLS weight `1/σ²`.
    pub fn weight(&self) -> f64 {
        1.0 / (self.sigma * self.sigma)
    }
}

/// An ordered collection of measurements for one (sub)network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSet {
    measurements: Vec<Measurement>,
}

impl MeasurementSet {
    /// An empty set.
    pub fn new() -> Self {
        MeasurementSet { measurements: Vec::new() }
    }

    /// Adds a measurement.
    pub fn push(&mut self, m: Measurement) {
        self.measurements.push(m);
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// True when no measurements are present.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Slice access.
    pub fn as_slice(&self) -> &[Measurement] {
        &self.measurements
    }

    /// The telemetered value vector `z`.
    pub fn values(&self) -> Vec<f64> {
        self.measurements.iter().map(|m| m.value).collect()
    }

    /// The WLS weight vector `diag(R⁻¹)`.
    pub fn weights(&self) -> Vec<f64> {
        self.measurements.iter().map(Measurement::weight).collect()
    }

    /// Removes the measurement at `idx` (bad-data elimination).
    pub fn remove(&mut self, idx: usize) -> Measurement {
        self.measurements.remove(idx)
    }

    /// Count of PMU measurements.
    pub fn n_pmu(&self) -> usize {
        self.measurements.iter().filter(|m| m.kind.is_pmu()).count()
    }

    /// Whether any PMU angle measurement is present (i.e. the set carries an
    /// absolute angle reference).
    pub fn has_angle_reference(&self) -> bool {
        self.measurements
            .iter()
            .any(|m| matches!(m.kind, MeasurementKind::PmuAngle { .. }))
    }

    /// Measurement redundancy `m / s` for a state dimension `s`.
    pub fn redundancy(&self, state_dim: usize) -> f64 {
        self.len() as f64 / state_dim as f64
    }

    /// Retains only measurements for which `keep` returns true.
    pub fn retain(&mut self, keep: impl FnMut(&Measurement) -> bool) {
        self.measurements.retain(keep);
    }

    /// Approximate serialized size in bytes, used by the communication model
    /// when the architecture ships pseudo measurements between estimators.
    pub fn wire_size(&self) -> usize {
        // kind tag + indices + value + sigma, conservatively 32 bytes each.
        32 * self.len()
    }
}

impl FromIterator<Measurement> for MeasurementSet {
    fn from_iter<T: IntoIterator<Item = Measurement>>(iter: T) -> Self {
        MeasurementSet { measurements: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_inverse_variance() {
        let m = Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.0, 0.5);
        assert!((m.weight() - 4.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sigma_rejected() {
        Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.0, 0.0);
    }

    #[test]
    fn set_accumulates_and_reports() {
        let mut set = MeasurementSet::new();
        assert!(set.is_empty());
        set.push(Measurement::new(MeasurementKind::Pinj { bus: 1 }, 0.3, 0.01));
        set.push(Measurement::new(MeasurementKind::PmuAngle { bus: 0 }, 0.0, 0.001));
        assert_eq!(set.len(), 2);
        assert_eq!(set.values(), vec![0.3, 0.0]);
        assert_eq!(set.n_pmu(), 1);
        assert!(set.has_angle_reference());
        assert!((set.redundancy(4) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn site_resolves_flow_measurements() {
        let branches = vec![pgse_grid::Branch::line(3, 7, 0.01, 0.1, 0.0)];
        let from = MeasurementKind::Pflow { branch: 0, side: FlowSide::From };
        let to = MeasurementKind::Qflow { branch: 0, side: FlowSide::To };
        assert_eq!(from.site(&branches), 3);
        assert_eq!(to.site(&branches), 7);
        assert_eq!(MeasurementKind::Vmag { bus: 5 }.site(&branches), 5);
    }

    #[test]
    fn remove_drops_by_index() {
        let mut set: MeasurementSet = [
            Measurement::new(MeasurementKind::Vmag { bus: 0 }, 1.0, 0.01),
            Measurement::new(MeasurementKind::Vmag { bus: 1 }, 1.1, 0.01),
        ]
        .into_iter()
        .collect();
        let removed = set.remove(0);
        assert!(matches!(removed.kind, MeasurementKind::Vmag { bus: 0 }));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn wire_size_scales_with_count() {
        let mut set = MeasurementSet::new();
        for i in 0..10 {
            set.push(Measurement::new(MeasurementKind::Vmag { bus: i }, 1.0, 0.01));
        }
        assert_eq!(set.wire_size(), 320);
    }
}

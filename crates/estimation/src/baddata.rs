//! Bad-data detection and identification.
//!
//! Classical WLS post-processing (Abur & Expósito ch. 5): the chi-square
//! test on the weighted objective detects the presence of gross errors, and
//! the largest-normalized-residual (LNR) test identifies and removes the
//! offending measurement, re-estimating until the test passes.

use pgse_sparsela::EnvelopeCholesky;

use crate::jacobian::{assemble_jacobian, StateSpace};
use crate::measurement::MeasurementSet;
use crate::wls::{StateEstimate, WlsError, WlsEstimator};

/// Upper-tail critical value of the chi-square distribution with `dof`
/// degrees of freedom at confidence `p` (e.g. `0.95`), via the
/// Wilson–Hilferty cube approximation.
pub fn chi_square_critical(dof: usize, p: f64) -> f64 {
    assert!(dof > 0, "chi-square needs positive dof");
    assert!((0.5..1.0).contains(&p), "confidence in [0.5, 1)");
    let k = dof as f64;
    let z = normal_quantile(p);
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Standard normal quantile (Acklam-style rational approximation, adequate
/// for test thresholds).
fn normal_quantile(p: f64) -> f64 {
    // Beasley-Springer-Moro.
    let a = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    let b = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    let c = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    let d = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Whether the chi-square test flags bad data in `estimate`.
pub fn chi_square_detects(estimate: &StateEstimate, state_dim: usize, confidence: f64) -> bool {
    let m = estimate.residuals.len();
    if m <= state_dim {
        return false;
    }
    estimate.objective > chi_square_critical(m - state_dim, confidence)
}

/// Normalized residuals `|rᵢ| / √(Sᵢᵢ)` with `S = R − H·G⁻¹·Hᵀ`.
///
/// Uses one gain-matrix Cholesky and one solve per measurement, which is
/// fine at subsystem scale. Measurements whose residual covariance is
/// numerically zero (leverage ≈ 1, critical measurements) get a normalized
/// residual of zero — the LNR test cannot identify errors in critical
/// measurements, matching the theory.
pub fn normalized_residuals(
    est: &WlsEstimator,
    set: &MeasurementSet,
    estimate: &StateEstimate,
) -> Result<Vec<f64>, WlsError> {
    let space: &StateSpace = est.space();
    let w = set.weights();
    let ybus = pgse_grid::Ybus::new(est.network());
    let h = assemble_jacobian(est.network(), &ybus, set, space, &estimate.vm, &estimate.va);
    let gain = h.ata_weighted(&w);
    let chol = EnvelopeCholesky::factor(&gain)
        .map_err(|e| WlsError::NotObservable(e.to_string()))?;
    let mut out = Vec::with_capacity(set.len());
    for (i, m) in set.as_slice().iter().enumerate() {
        // hᵢ: the i-th row of H as a dense vector.
        let (cols, vals) = h.row(i);
        let mut hi = vec![0.0; space.dim()];
        for (c, v) in cols.iter().zip(vals) {
            hi[*c] = *v;
        }
        let gi = chol.solve(&hi);
        let hgh: f64 = hi.iter().zip(&gi).map(|(a, b)| a * b).sum();
        let r_ii = m.sigma * m.sigma;
        let s_ii = (r_ii - hgh).max(0.0);
        if s_ii < 1e-14 {
            out.push(0.0);
        } else {
            out.push(estimate.residuals[i].abs() / s_ii.sqrt());
        }
    }
    Ok(out)
}

/// Outcome of the detect-identify-remove loop.
#[derive(Debug, Clone)]
pub struct BadDataReport {
    /// Indices (into the *original* set) of removed measurements, in
    /// removal order.
    pub removed: Vec<usize>,
    /// The final estimate after all removals.
    pub estimate: StateEstimate,
    /// Whether the chi-square test passes at the end.
    pub clean: bool,
}

/// Runs WLS, then repeatedly removes the measurement with the largest
/// normalized residual while the chi-square test fails (capped at
/// `max_removals`).
pub fn identify_and_remove(
    est: &WlsEstimator,
    set: &MeasurementSet,
    confidence: f64,
    max_removals: usize,
) -> Result<BadDataReport, WlsError> {
    let mut working = set.clone();
    // Track original indices through removals.
    let mut index_map: Vec<usize> = (0..set.len()).collect();
    let mut removed = Vec::new();
    let mut estimate = est.estimate(&working)?;
    for _ in 0..max_removals {
        if !chi_square_detects(&estimate, est.space().dim(), confidence) {
            return Ok(BadDataReport { removed, estimate, clean: true });
        }
        let rn = normalized_residuals(est, &working, &estimate)?;
        let (worst, &worst_val) = rn
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite residuals"))
            .expect("non-empty set");
        if worst_val < 3.0 {
            // Nothing identifiable even though chi-square fired.
            return Ok(BadDataReport { removed, estimate, clean: false });
        }
        working.remove(worst);
        removed.push(index_map.remove(worst));
        estimate = est.estimate(&working)?;
    }
    let clean = !chi_square_detects(&estimate, est.space().dim(), confidence);
    Ok(BadDataReport { removed, estimate, clean })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::StateSpace;
    use crate::telemetry::TelemetryPlan;
    use crate::wls::WlsOptions;
    use pgse_grid::cases::ieee14;
    use pgse_powerflow::{solve, PfOptions};

    fn setup() -> (WlsEstimator, MeasurementSet) {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let plan = TelemetryPlan::full(&net, vec![0]);
        let set = plan.generate(&net, &sol, 1.0, 99);
        let est = WlsEstimator::new(
            net.clone(),
            StateSpace::with_reference(14, net.slack()),
            WlsOptions::default(),
        );
        (est, set)
    }

    #[test]
    fn chi_square_critical_matches_tables() {
        // χ²₀.₉₅ reference values: 10 dof → 18.31, 50 dof → 67.50.
        assert!((chi_square_critical(10, 0.95) - 18.31).abs() < 0.2);
        assert!((chi_square_critical(50, 0.95) - 67.50).abs() < 0.5);
    }

    #[test]
    fn normal_quantile_sanity() {
        assert!((normal_quantile(0.975) - 1.95996).abs() < 1e-3);
        assert!((normal_quantile(0.5)).abs() < 1e-6);
    }

    #[test]
    fn clean_data_passes_chi_square() {
        let (est, set) = setup();
        let out = est.estimate(&set).unwrap();
        assert!(!chi_square_detects(&out, est.space().dim(), 0.99));
    }

    #[test]
    fn gross_error_is_detected_and_identified() {
        let (est, mut set) = setup();
        // Corrupt one injection by 30σ.
        let bad_idx = 20usize;
        let mut bad = set.as_slice()[bad_idx];
        bad.value += 30.0 * bad.sigma;
        set.remove(bad_idx);
        let mut corrupted = MeasurementSet::new();
        for (i, m) in set.as_slice().iter().enumerate() {
            if i == bad_idx {
                corrupted.push(bad);
            }
            corrupted.push(*m);
        }
        if bad_idx >= set.len() {
            corrupted.push(bad);
        }
        let report = identify_and_remove(&est, &corrupted, 0.95, 5).unwrap();
        assert!(report.clean);
        assert_eq!(report.removed.len(), 1);
        // The removed measurement is the corrupted one.
        let removed = corrupted.as_slice()[report.removed[0]];
        assert!((removed.value - bad.value).abs() < 1e-12);
    }

    #[test]
    fn normalized_residuals_flag_the_bad_measurement() {
        let (est, mut set) = setup();
        let bad_idx = 10usize;
        let mut bad = set.remove(bad_idx);
        bad.value += 25.0 * bad.sigma;
        let mut corrupted = MeasurementSet::new();
        for (i, m) in set.as_slice().iter().enumerate() {
            if i == bad_idx {
                corrupted.push(bad);
            }
            corrupted.push(*m);
        }
        let out = est.estimate(&corrupted).unwrap();
        let rn = normalized_residuals(&est, &corrupted, &out).unwrap();
        let max_idx = rn
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, bad_idx);
        assert!(rn[bad_idx] > 3.0);
    }

    #[test]
    fn report_on_clean_data_removes_nothing() {
        let (est, set) = setup();
        let report = identify_and_remove(&est, &set, 0.95, 5).unwrap();
        assert!(report.clean);
        assert!(report.removed.is_empty());
    }
}

//! Numerical observability analysis.
//!
//! A network is observable with a given measurement set when the gain
//! matrix `G = HᵀR⁻¹H`, evaluated at flat start, is positive definite.
//! We check that directly with the sparse Cholesky, and report which state
//! variables are touched by no measurement at all — the cheap structural
//! pre-check that catches most deployment mistakes (e.g. an area whose PMU
//! feed dropped).

use pgse_grid::{Network, Ybus};
use pgse_sparsela::EnvelopeCholesky;

use crate::jacobian::{assemble_jacobian, StateSpace};
use crate::measurement::MeasurementSet;

/// Result of an observability check.
#[derive(Debug, Clone)]
pub struct Observability {
    /// Whether the WLS problem is solvable (gain matrix SPD).
    pub observable: bool,
    /// State-variable columns with no incident measurement (structural
    /// holes); indices into the state vector.
    pub untouched_states: Vec<usize>,
    /// Measurement redundancy `m / dim`.
    pub redundancy: f64,
    /// Human-readable reason when unobservable.
    pub reason: Option<String>,
}

/// Checks observability of `set` on `net` under `space`.
pub fn check(net: &Network, set: &MeasurementSet, space: &StateSpace) -> Observability {
    let ybus = Ybus::new(net);
    let n = net.n_buses();
    let vm = vec![1.0; n];
    let va = vec![0.0; n];
    let h = assemble_jacobian(net, &ybus, set, space, &vm, &va);

    // Structural pre-check: columns with no entries.
    let mut touched = vec![false; space.dim()];
    for r in 0..h.nrows() {
        let (cols, _) = h.row(r);
        for &c in cols {
            touched[c] = true;
        }
    }
    let untouched_states: Vec<usize> =
        (0..space.dim()).filter(|&c| !touched[c]).collect();
    let redundancy = set.redundancy(space.dim());

    if set.len() < space.dim() {
        return Observability {
            observable: false,
            untouched_states,
            redundancy,
            reason: Some(format!(
                "only {} measurements for {} states",
                set.len(),
                space.dim()
            )),
        };
    }
    if !untouched_states.is_empty() {
        return Observability {
            observable: false,
            untouched_states,
            redundancy,
            reason: Some("state variables with no incident measurement".into()),
        };
    }
    let gain = h.ata_weighted(&set.weights());
    match EnvelopeCholesky::factor(&gain) {
        Ok(_) => Observability { observable: true, untouched_states, redundancy, reason: None },
        Err(e) => Observability {
            observable: false,
            untouched_states,
            redundancy,
            reason: Some(format!("gain matrix not positive definite: {e}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobian::StateSpace;
    use crate::telemetry::TelemetryPlan;
    use pgse_grid::cases::ieee14;
    use pgse_powerflow::{solve, PfOptions};

    #[test]
    fn full_telemetry_is_observable() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let set = TelemetryPlan::full(&net, vec![0]).generate(&net, &sol, 1.0, 1);
        let obs = check(&net, &set, &StateSpace::with_reference(14, 0));
        assert!(obs.observable, "{:?}", obs.reason);
        assert!(obs.redundancy > 2.0);
        assert!(obs.untouched_states.is_empty());
    }

    #[test]
    fn too_few_measurements_fail_fast() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let mut plan = TelemetryPlan::full(&net, vec![]);
        plan.injection_buses.clear();
        plan.flow_branches_from.clear();
        let set = plan.generate(&net, &sol, 1.0, 1);
        let obs = check(&net, &set, &StateSpace::with_reference(14, 0));
        assert!(!obs.observable);
        assert!(obs.reason.unwrap().contains("measurements for"));
    }

    #[test]
    fn missing_angle_reference_is_unobservable_in_full_space() {
        // Full state space (all angles unknown) without any PMU angle:
        // the gain matrix has the uniform-angle-shift null space.
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let set = TelemetryPlan::full(&net, vec![]).generate(&net, &sol, 1.0, 1);
        let obs = check(&net, &set, &StateSpace::full(14));
        assert!(!obs.observable);
    }

    #[test]
    fn pmu_anchoring_restores_observability_in_full_space() {
        let net = ieee14();
        let sol = solve(&net, &PfOptions::default()).unwrap();
        let set = TelemetryPlan::full(&net, vec![3]).generate(&net, &sol, 1.0, 1);
        let obs = check(&net, &set, &StateSpace::full(14));
        assert!(obs.observable, "{:?}", obs.reason);
    }
}

//! Cross-case recovery tests: the estimator must reproduce the exact state
//! from noise-free telemetry on *any* network the builder can produce, and
//! degrade gracefully (and without bias) as noise grows.

use pgse_estimation::jacobian::StateSpace;
use pgse_estimation::telemetry::TelemetryPlan;
use pgse_estimation::wls::{WlsEstimator, WlsOptions};
use pgse_grid::cases::builder::{build, AreaPlan};
use pgse_powerflow::{solve, PfOptions};

fn random_case(seed: u64, n_areas: usize) -> pgse_grid::Network {
    build(&AreaPlan {
        name: format!("recovery-{seed}"),
        bus_counts: vec![6 + (seed as usize % 5); n_areas],
        area_edges: (1..n_areas).map(|a| (a - 1, a)).collect(),
        ties_per_edge: 2,
        seed,
        load_mw: (15.0, 35.0),
        chord_fraction: 0.3,
    })
}

#[test]
fn near_zero_noise_recovers_exact_state_on_random_networks() {
    for seed in [1u64, 7, 42, 99] {
        let net = random_case(seed, 3);
        let pf = solve(&net, &PfOptions::default()).unwrap();
        let plan = TelemetryPlan::full(&net, vec![net.slack()]);
        let set = plan.generate(&net, &pf, 1e-6, seed);
        let est = WlsEstimator::new(
            net.clone(),
            StateSpace::with_reference(net.n_buses(), net.slack()),
            WlsOptions::default(),
        );
        let out = est.estimate(&set).unwrap();
        assert!(out.vm_rmse(&pf.vm) < 1e-6, "seed {seed}: {}", out.vm_rmse(&pf.vm));
        assert!(out.va_rmse(&pf.va) < 1e-6, "seed {seed}: {}", out.va_rmse(&pf.va));
    }
}

#[test]
fn error_scales_roughly_linearly_with_noise() {
    let net = random_case(5, 3);
    let pf = solve(&net, &PfOptions::default()).unwrap();
    let plan = TelemetryPlan::full(&net, vec![net.slack()]);
    let est = WlsEstimator::new(
        net.clone(),
        StateSpace::with_reference(net.n_buses(), net.slack()),
        WlsOptions::default(),
    );
    // Average over several scans to suppress realization noise.
    let mean_err = |level: f64| -> f64 {
        let mut total = 0.0;
        let n = 6;
        for seed in 0..n {
            let set = plan.generate(&net, &pf, level, 100 + seed);
            total += est.estimate(&set).unwrap().vm_rmse(&pf.vm);
        }
        total / n as f64
    };
    let e1 = mean_err(0.5);
    let e2 = mean_err(2.0);
    // 4× the noise should give roughly 4× the error (WLS is unbiased and
    // the problem is locally linear); accept a generous band.
    let ratio = e2 / e1;
    assert!(ratio > 2.0 && ratio < 8.0, "ratio {ratio}");
}

#[test]
fn estimates_are_unbiased_across_realizations() {
    let net = random_case(11, 2);
    let pf = solve(&net, &PfOptions::default()).unwrap();
    let plan = TelemetryPlan::full(&net, vec![net.slack()]);
    let est = WlsEstimator::new(
        net.clone(),
        StateSpace::with_reference(net.n_buses(), net.slack()),
        WlsOptions::default(),
    );
    let n = net.n_buses();
    let mut mean_vm = vec![0.0f64; n];
    let reps = 24;
    for seed in 0..reps {
        let set = plan.generate(&net, &pf, 1.0, 500 + seed);
        let out = est.estimate(&set).unwrap();
        for (m, v) in mean_vm.iter_mut().zip(&out.vm) {
            *m += v / reps as f64;
        }
    }
    // The mean estimate converges on the truth (bias ≪ single-scan error).
    for (i, (m, t)) in mean_vm.iter().zip(&pf.vm).enumerate() {
        assert!(
            (m - t).abs() < 2e-3,
            "bus {i}: mean {} vs truth {}",
            m,
            t
        );
    }
}

#[test]
fn flow_only_telemetry_still_observable_with_voltages() {
    // Drop all injection measurements: V + flows (+ PMU) must still carry
    // the state.
    let net = random_case(21, 2);
    let pf = solve(&net, &PfOptions::default()).unwrap();
    let mut plan = TelemetryPlan::full(&net, vec![net.slack()]);
    plan.injection_buses.clear();
    // Measure both branch ends for extra redundancy.
    plan.flow_branches_to = (0..net.n_branches()).collect();
    let set = plan.generate(&net, &pf, 0.5, 3);
    let est = WlsEstimator::new(
        net.clone(),
        StateSpace::with_reference(net.n_buses(), net.slack()),
        WlsOptions::default(),
    );
    let out = est.estimate(&set).unwrap();
    assert!(out.vm_rmse(&pf.vm) < 5e-3);
}

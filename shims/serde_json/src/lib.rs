//! Offline stand-in for `serde_json`, printing and parsing the shim
//! `serde::Content` tree as JSON.
//!
//! Floats are emitted with Rust's shortest-round-trip formatting, so the
//! `float_roundtrip` guarantee of the real crate holds. Non-finite floats
//! serialize as `null` (the real crate's behaviour).

use serde::{Content, Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
///
/// # Errors
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::new)
}

/// Parses a value from JSON bytes.
///
/// # Errors
/// [`Error`] on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's shortest-round-trip formatting; ensure a decimal
                // point or exponent survives so the value re-parses as F64.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogates are not paired (unused by this
                            // workspace's documents); map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or_else(|| Error::new("bad utf-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("bad number at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_shortest_roundtrip() {
        for v in [0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 1.021] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn whole_floats_keep_float_shape() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn vec_roundtrips_pretty_and_compact() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_documents_error() {
        for bad in ["", "{", "[1,", "\"open", "tru", "1.2.3", "[1] junk"] {
            assert!(from_str::<Vec<u32>>(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn bytes_interface_matches() {
        let v = vec![7u8, 9];
        let bytes = to_vec(&v).unwrap();
        assert_eq!(from_slice::<Vec<u8>>(&bytes).unwrap(), v);
    }
}

//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the tiny API subset it uses. Semantics differ from the
//! real crate only in that poisoning is swallowed (parking_lot has no
//! poisoning either, so callers observe the same behaviour).

use std::sync::PoisonError;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable matching the parking_lot API shape.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condvar.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded through SplitMix64),
//! the [`Rng`]/[`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool`,
//! and [`seq::SliceRandom`] with `shuffle`/`choose`. Streams differ from
//! upstream `StdRng` (which is ChaCha12) but are deterministic per seed,
//! which is the property this workspace's tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Unbiased-enough integer range sampling via 128-bit multiply-shift.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing RNG methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffle and choose on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..14);
            assert!((3..14).contains(&n));
            let k = rng.gen_range(0..=5u32);
            assert!(k <= 5);
        }
    }

    #[test]
    fn unit_interval_statistics_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}

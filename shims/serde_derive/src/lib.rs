//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (a `Content`-tree data model, see `shims/serde`). Because the
//! real `syn`/`quote` crates are unavailable offline, the item is parsed
//! directly from the `proc_macro::TokenStream`. Supported shapes — the
//! ones this workspace uses — are structs with named fields, enums of unit
//! variants, and enums of struct variants; anything else panics with a
//! clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` item.
struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// Named fields of a struct.
    Struct(Vec<String>),
    /// Enum variants: name plus optional named fields.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{n}::{v} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{v}\")),",
                        n = item.name
                    ),
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{n}::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{v}\"), \
                             ::serde::Content::Map(::std::vec![{e}]))]),",
                            n = item.name,
                            e = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {n} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}",
        n = item.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::content_get(map, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let map = c.as_map().ok_or_else(|| \
                 ::std::format!(\"expected map for {n}, got {{c:?}}\"))?;\n\
                 ::std::result::Result::Ok({n} {{ {i} }})",
                n = item.name,
                i = inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| {
                    format!("\"{v}\" => ::std::result::Result::Ok({n}::{v}),", n = item.name)
                })
                .collect();
            let struct_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(\
                                 ::serde::content_get(inner_map, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                         let inner_map = inner.as_map().ok_or_else(|| \
                         ::std::format!(\"variant {n}::{v} expects a map\"))?;\n\
                         ::std::result::Result::Ok({n}::{v} {{ {i} }})\n\
                         }}",
                        n = item.name,
                        i = inits.join(", ")
                    )
                })
                .collect();
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => ::std::result::Result::Err(\
                 ::std::format!(\"unknown {n} variant {{other}}\")),\n\
                 }},\n\
                 ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 match tag.as_str() {{\n\
                 {st}\n\
                 other => ::std::result::Result::Err(\
                 ::std::format!(\"unknown {n} variant {{other}}\")),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(\
                 ::std::format!(\"bad content for enum {n}: {{other:?}}\")),\n\
                 }}",
                n = item.name,
                unit = unit_arms.join("\n"),
                st = struct_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {n} {{\n\
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}",
        n = item.name
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}

/// Parses the derive input item (struct with named fields, or enum of
/// unit/struct variants).
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind_kw = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic type `{name}` is not supported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive shim: unit/tuple struct `{name}` is not supported")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple struct `{name}` is not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive: unexpected end of input for `{name}`"),
        }
    };
    let kind = match kind_kw.as_str() {
        "struct" => ItemKind::Struct(parse_named_fields(body.stream(), &name)),
        "enum" => ItemKind::Enum(parse_variants(body.stream(), &name)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Parses `name: Type, …` out of a braces group, returning the names.
fn parse_named_fields(stream: TokenStream, ctx: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            None => break 'fields,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name in `{ctx}`, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{ctx}.{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    continue 'fields;
                }
                Some(_) => {}
            }
        }
    }
    fields
}

/// Parses enum variants, returning `(name, Some(fields))` for struct
/// variants and `(name, None)` for unit variants.
fn parse_variants(stream: TokenStream, ctx: &str) -> Vec<(String, Option<Vec<String>>)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'variants: loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            None => break 'variants,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name in `{ctx}`, got {other:?}"),
        };
        let mut fields = None;
        // Optional payload, discriminant, then comma.
        loop {
            match tokens.next() {
                None => {
                    variants.push((name, fields));
                    break 'variants;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream(), ctx));
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("serde_derive shim: tuple variant `{ctx}::{name}` is not supported")
                }
                Some(_) => {} // discriminant tokens
            }
        }
        variants.push((name, fields));
    }
    variants
}

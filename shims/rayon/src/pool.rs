//! The work-chunking executor behind the `par_iter` surface.
//!
//! A `PoolCore` owns a set of `std::thread` workers and one global
//! injector queue of `Broadcast` tasks. A parallel operation posts a
//! single broadcast task describing `total` chunks; idle workers (and the
//! posting thread itself) race on an atomic chunk counter, so chunks are
//! claimed exactly once and the caller never blocks while claimable work
//! remains — the property that makes nested parallel calls deadlock-free:
//! a waiting caller has always first drained every chunk it could claim.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Chunks executed through any pool in this process (workers and posting
/// threads alike). A cheap process-wide activity probe for tests that
/// assert a code path really ran on the executor.
static CHUNKS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Parallel operations (broadcast tasks) posted process-wide.
static PAR_OPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of chunks executed by parallel operations.
pub fn chunks_executed() -> u64 {
    CHUNKS_EXECUTED.load(Ordering::Relaxed)
}

/// Process-wide count of parallel operations run on a pool.
pub fn parallel_ops() -> u64 {
    PAR_OPS.load(Ordering::Relaxed)
}

/// One parallel operation: `total` chunks claimed via `next`, executed by
/// whoever claims them, completion tracked in `done`.
struct Broadcast {
    /// Chunk executor. Points into the posting thread's stack frame.
    ///
    /// Safety: [`PoolCore::run_chunks`] does not return until `done ==
    /// total`; an index is only granted while `next < total`, and every
    /// granted index increments `done` exactly once after its `body` call
    /// finishes. Hence each dereference happens-before `run_chunks`
    /// returns, while the frame is still live.
    body: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    total: usize,
    done: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

unsafe impl Send for Broadcast {}
unsafe impl Sync for Broadcast {}

impl Broadcast {
    /// Claims and runs chunks until none are left.
    fn run_available(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            let body = unsafe { &*self.body };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(i))) {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(p);
            }
            CHUNKS_EXECUTED.fetch_add(1, Ordering::Relaxed);
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done += 1;
            if *done == self.total {
                self.done_cv.notify_all();
            }
        }
    }
}

/// Shared state of one thread pool: the injector queue and its workers'
/// coordination primitives.
pub(crate) struct PoolCore {
    injector: Mutex<VecDeque<Arc<Broadcast>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    workers: usize,
}

impl PoolCore {
    /// Worker-thread count (may be 0 for a degenerate pool; callers treat
    /// that as "run everything inline").
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `body(0..total)` with chunks distributed over the pool; the
    /// calling thread participates. Returns after every chunk completed;
    /// re-raises the first chunk panic.
    pub(crate) fn run_chunks(self: &Arc<Self>, total: usize, body: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        PAR_OPS.fetch_add(1, Ordering::Relaxed);
        if total == 1 || self.workers == 0 {
            for i in 0..total {
                body(i);
                CHUNKS_EXECUTED.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        // Erase the borrow lifetime; see the safety note on `Broadcast::body`.
        let body_ptr: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(body as *const (dyn Fn(usize) + Sync)) };
        let task = Arc::new(Broadcast {
            body: body_ptr,
            next: AtomicUsize::new(0),
            total,
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        // One queue handle per worker that could usefully join in. A stale
        // handle popped after completion finds `next >= total` and drops.
        let handles = self.workers.min(total - 1);
        {
            let mut q = self.injector.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..handles {
                q.push_back(task.clone());
            }
        }
        self.work_cv.notify_all();
        task.run_available();
        let mut done = task.done.lock().unwrap_or_else(|e| e.into_inner());
        while *done < task.total {
            done = task.done_cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
        drop(done);
        let p = task.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(p) = p {
            resume_unwind(p);
        }
    }
}

fn worker_loop(core: Arc<PoolCore>) {
    // Nested parallel calls from this worker reuse its own pool.
    CURRENT_POOL.with(|c| *c.borrow_mut() = Some(core.clone()));
    loop {
        let task = {
            let mut q = core.injector.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if core.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = core.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        task.run_available();
    }
}

thread_local! {
    /// The pool parallel operations on this thread run on, installed by
    /// [`crate::ThreadPool::install`] (or worker spawn). `None` means the
    /// global pool.
    static CURRENT_POOL: RefCell<Option<Arc<PoolCore>>> = const { RefCell::new(None) };
}

/// Builds the core and spawns its workers.
pub(crate) fn spawn_core(
    workers: usize,
    name: &mut dyn FnMut(usize) -> String,
) -> (Arc<PoolCore>, Vec<std::thread::JoinHandle<()>>) {
    let core = Arc::new(PoolCore {
        injector: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        workers,
    });
    let handles = (0..workers)
        .map(|i| {
            let core = core.clone();
            std::thread::Builder::new()
                .name(name(i))
                .spawn(move || worker_loop(core))
                .expect("spawn pool worker")
        })
        .collect();
    (core, handles)
}

/// Stops the workers of `core` and joins `handles`.
pub(crate) fn shutdown_core(core: &PoolCore, handles: Vec<std::thread::JoinHandle<()>>) {
    core.shutdown.store(true, Ordering::Release);
    core.work_cv.notify_all();
    for h in handles {
        let _ = h.join();
    }
}

/// Installs `core` as the thread's current pool for the duration of `f`.
pub(crate) fn with_pool<R>(core: Arc<PoolCore>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<PoolCore>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_POOL.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(CURRENT_POOL.with(|c| c.borrow_mut().replace(core)));
    f()
}

/// The pool the calling thread's parallel operations run on.
pub(crate) fn current_core() -> Arc<PoolCore> {
    if let Some(core) = CURRENT_POOL.with(|c| c.borrow().clone()) {
        return core;
    }
    global_core()
}

fn global_core() -> Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let workers =
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let (core, _handles) =
                spawn_core(workers, &mut |i| format!("rayon-global-{i}"));
            // Global workers live for the process lifetime; handles leak by
            // design (mirrors rayon's static pool).
            core
        })
        .clone()
}

/// Worker count of the calling thread's current pool (at least 1, counting
/// the calling thread itself on a degenerate pool).
pub fn current_num_threads() -> usize {
    current_core().workers().max(1)
}

//! Offline stand-in for the `rayon` crate.
//!
//! The workspace builds in a container without crates.io access, so this
//! shim provides the `par_iter`/`into_par_iter`/`par_iter_mut` entry points
//! over plain sequential `std` iterators: every adapter (`map`, `zip`,
//! `enumerate`, `sum`, `collect`, `for_each`, …) is then the std one.
//! Cluster-level concurrency in this repo comes from `std::thread::scope`
//! (see `pgse-cluster`), so dropping intra-area data parallelism keeps all
//! observable behaviour; only single-process throughput changes.

/// The conventional import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// `collection.into_par_iter()` — sequential here.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Returns the (sequential) iterator.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<I: IntoIterator> IntoParallelIterator for I {}

/// `collection.par_iter()` — sequential here.
pub trait IntoParallelRefIterator<'a> {
    /// Iterator type produced.
    type Iter: Iterator;
    /// Returns the (sequential) borrowing iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// `collection.par_iter_mut()` — sequential here.
pub trait IntoParallelRefMutIterator<'a> {
    /// Iterator type produced.
    type Iter: Iterator;
    /// Returns the (sequential) mutably-borrowing iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Runs the two closures (sequentially) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]; configuration is recorded but jobs run on
/// the calling thread.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested worker count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepts (and ignores) a thread-name function.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.max(1) })
    }
}

/// A "pool" that executes installed jobs on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` (on the calling thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 12);
        let t: i64 = (0..1000).into_par_iter().map(|i: i64| i).sum();
        assert_eq!(t, 499_500);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn pool_installs() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
    }
}

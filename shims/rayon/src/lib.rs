//! Offline stand-in for the `rayon` crate — now a real executor.
//!
//! The workspace builds in a container without crates.io access, so this
//! shim vendors the subset of rayon's API the repo uses. Unlike the
//! original sequential stand-in, parallel operations now run on a
//! persistent pool of `std::thread` workers with a global injector queue
//! (see [`pool`]): `par_iter`/`par_iter_mut`/`into_par_iter` split
//! indexed sources into cache-sized chunks claimed by idle workers, and
//! [`join`] forks both closures onto the pool. Small inputs (or a pool
//! with no workers) short-circuit to the calling thread, so there is no
//! synchronisation cost below the chunking threshold.
//!
//! Divergences from real rayon, by design:
//! - [`ThreadPool::install`] runs `op` on the *calling* thread with the
//!   pool installed as the thread's current executor (TLS), rather than
//!   migrating `op` onto a worker. Parallel operations inside `op` still
//!   fan out across the pool's workers; only thread identity of the
//!   top-level closure differs, which this repo never relies on.
//! - Work distribution is a global injector queue + atomic chunk counter,
//!   not per-worker deques with stealing. Callers participate in their own
//!   operations (a waiting caller first drains every chunk it can claim),
//!   which makes nested parallelism deadlock-free on any pool width.
//!
//! Ordering contract: order-sensitive terminals (`collect`, `sum`)
//! combine chunk results in chunk order, so results do not depend on the
//! number of workers. For floating-point reductions that must be bitwise
//! reproducible, use fixed-size chunks via
//! [`ParallelSlice::par_chunks`] — that is what `pgse-sparsela`'s
//! deterministic kernels build on (DESIGN.md §10).

mod iter;
pub mod pool;

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    ParallelSlice, ParallelSliceMut,
};
pub use pool::{chunks_executed, current_num_threads, parallel_ops};

/// The conventional import surface.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Runs both closures, potentially in parallel on the current pool, and
/// returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    use std::sync::Mutex;
    let core = pool::current_core();
    if core.workers() == 0 {
        return (a(), b());
    }
    let a_slot: Mutex<(Option<A>, Option<RA>)> = Mutex::new((Some(a), None));
    let b_slot: Mutex<(Option<B>, Option<RB>)> = Mutex::new((Some(b), None));
    core.run_chunks(2, &|i| {
        if i == 0 {
            let f = a_slot.lock().unwrap_or_else(|e| e.into_inner()).0.take().expect("join ran once");
            let r = f();
            a_slot.lock().unwrap_or_else(|e| e.into_inner()).1 = Some(r);
        } else {
            let f = b_slot.lock().unwrap_or_else(|e| e.into_inner()).0.take().expect("join ran once");
            let r = f();
            b_slot.lock().unwrap_or_else(|e| e.into_inner()).1 = Some(r);
        }
    });
    (
        a_slot.into_inner().unwrap_or_else(|e| e.into_inner()).1.expect("join produced a result"),
        b_slot.into_inner().unwrap_or_else(|e| e.into_inner()).1.expect("join produced b result"),
    )
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    name: Option<Box<dyn FnMut(usize) -> String>>,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 means "pick from available parallelism").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the worker thread-name function.
    pub fn thread_name<F>(mut self, f: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self.name = Some(Box::new(f));
        self
    }

    /// Builds the pool and spawns its workers.
    ///
    /// # Errors
    /// Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let workers = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        let mut name = self.name.unwrap_or_else(|| Box::new(|i| format!("rayon-worker-{i}")));
        let (core, handles) = pool::spawn_core(workers, &mut *name);
        Ok(ThreadPool { core, handles: Some(handles) })
    }
}

/// A persistent worker pool. Jobs are `install`ed from the calling thread;
/// parallel operations inside them fan out across the pool's workers.
pub struct ThreadPool {
    core: std::sync::Arc<pool::PoolCore>,
    handles: Option<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.core.workers()).finish()
    }
}

impl ThreadPool {
    /// Runs `op` on the calling thread with this pool installed as the
    /// thread's current executor: parallel operations inside `op` run on
    /// this pool's workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        pool::with_pool(self.core.clone(), op)
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.core.workers()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(handles) = self.handles.take() {
            pool::shutdown_core(&self.core, handles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 12);
        let t: i64 = (0..1000i64).into_par_iter().sum();
        assert_eq!(t, 499_500);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn pool_installs() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..100_000usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 100_000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 3);
        }
    }

    #[test]
    fn collect_result_short_circuits_on_err() {
        let r: Result<Vec<usize>, String> = (0..10_000usize)
            .into_par_iter()
            .map(|i| if i == 7_777 { Err(format!("bad {i}")) } else { Ok(i) })
            .collect();
        assert_eq!(r, Err("bad 7777".to_string()));
        let ok: Result<Vec<usize>, String> =
            (0..100usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
    }

    #[test]
    fn zip_and_enumerate_line_up() {
        let a: Vec<usize> = (0..50_000).collect();
        let b: Vec<usize> = (0..50_000).map(|i| i * 2).collect();
        let s: usize = a.par_iter().zip(&b).map(|(x, y)| y - x).sum();
        assert_eq!(s, (0..50_000).sum::<usize>());
        let mut out = vec![0usize; 50_000];
        out.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(out, a);
    }

    #[test]
    fn work_actually_lands_on_pool_workers() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .thread_name(|i| format!("probe-{i}"))
            .build()
            .unwrap();
        let names = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                if let Some(n) = std::thread::current().name() {
                    names.lock().unwrap().insert(n.to_string());
                }
                // Slow chunks so the posting thread cannot drain the whole
                // queue before any worker wakes (keeps the assert stable on
                // loaded or single-core machines).
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        let names = names.into_inner().unwrap();
        // The calling thread participates too; at least one probe worker
        // must have claimed a chunk on a 4-wide pool with ~30 chunks.
        assert!(
            names.iter().any(|n| n.starts_with("probe-")),
            "no pool worker executed a chunk: {names:?}"
        );
        assert!(super::chunks_executed() > 0);
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| super::join(|| 1 + 1, || "x".to_string()));
        assert_eq!((a, b.as_str()), (2, "x"));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| super::join(|| (), || panic!("boom")));
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total: usize = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|_| (0..10_000usize).into_par_iter().map(|j| j % 7).sum::<usize>())
                .sum()
        });
        let expect: usize = 64 * (0..10_000usize).map(|j| j % 7).sum::<usize>();
        assert_eq!(total, expect);
    }

    #[test]
    fn panic_in_chunk_propagates_to_caller() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..100_000usize).into_par_iter().for_each(|i| {
                    if i == 50_000 {
                        panic!("chunk panic");
                    }
                });
            });
        }));
        assert!(caught.is_err());
        // Pool remains usable after a panicked operation.
        let s: usize = pool.install(|| (0..1000usize).into_par_iter().sum());
        assert_eq!(s, 499_500);
    }

    #[test]
    fn par_chunks_boundaries_are_worker_independent() {
        let v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let count = AtomicUsize::new(0);
        let sums: Vec<f64> = v
            .par_chunks(1024)
            .map(|c| {
                count.fetch_add(1, Ordering::Relaxed);
                c.iter().sum::<f64>()
            })
            .collect();
        assert_eq!(sums.len(), 10);
        assert_eq!(count.load(Ordering::Relaxed), 10);
        let seq: Vec<f64> = v.chunks(1024).map(|c| c.iter().sum::<f64>()).collect();
        assert_eq!(sums, seq);
    }

    #[test]
    fn pools_are_isolated_by_install() {
        let p1 = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let p8 = super::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let on1 = p1.install(super::current_num_threads);
        let on8 = p8.install(super::current_num_threads);
        assert_eq!(on1, 1);
        assert_eq!(on8, 8);
    }
}

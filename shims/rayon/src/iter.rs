//! Slice-, range- and vec-based parallel iterators.
//!
//! Every source here is *indexed*: it knows its length and can split at an
//! index, so the driver can carve it into fixed chunk producers up front
//! and hand whole chunks to the pool. Within a chunk, items are drained
//! through a plain sequential [`Iterator`] — adapters compile down to the
//! std ones with no per-item synchronisation or dynamic dispatch.
//!
//! Ordering guarantee: order-sensitive terminals (`collect`, `sum`)
//! combine chunk results **in chunk order** on the calling thread, so for
//! a fixed chunking the result is independent of how many workers ran the
//! chunks. Chunk *sizing* is adaptive (derived from the pool width) unless
//! the source fixes it explicitly — `par_chunks`/`par_chunks_mut` items
//! are stable slices regardless of worker count, which is what
//! `pgse-sparsela`'s deterministic reductions are built on.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::pool;

/// Cap on items per chunk, so huge inputs still stream through the cache
/// in pieces instead of being quartered into giant blocks.
const MAX_CHUNK: usize = 16 * 1024;

/// An indexed, splittable parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced.
    type Item: Send;
    /// Sequential per-chunk iterator.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn plen(&self) -> usize;
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Sequential iterator over all remaining items.
    fn into_seq_iter(self) -> Self::SeqIter;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f: Arc::new(f) }
    }

    /// Pairs items with another parallel source; the shorter side wins.
    fn zip<B: IntoParallelIterator>(self, other: B) -> Zip<Self, B::Iter> {
        Zip { a: self, b: other.into_par_iter() }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Applies `f` to every item on the pool.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self, &|chunk: Self| chunk.into_seq_iter().for_each(&f));
    }

    /// Sums the items (chunk partials combined in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        drive(self, &|chunk: Self| chunk.into_seq_iter().sum::<S>()).into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.plen()
    }

    /// Collects into any `FromIterator` collection, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let parts: Vec<Vec<Self::Item>> =
            drive(self, &|chunk: Self| chunk.into_seq_iter().collect());
        parts.into_iter().flatten().collect()
    }
}

/// `Vec<Option<T>>` slots written by at most one thread each (exclusive
/// chunk indices), read back by the driver after the barrier.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(parts: Vec<T>) -> Self {
        Slots(parts.into_iter().map(|p| UnsafeCell::new(Some(p))).collect())
    }

    fn empty(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Takes slot `i`.
    ///
    /// Safety: callers must hold exclusive rights to index `i` (the pool's
    /// chunk counter grants each index to exactly one thread).
    unsafe fn take(&self, i: usize) -> Option<T> {
        (*self.0[i].get()).take()
    }

    /// Fills slot `i`; same exclusivity requirement as [`Slots::take`].
    unsafe fn put(&self, i: usize, value: T) {
        *self.0[i].get() = Some(value);
    }
}

/// Splits `iter` into chunks, folds each chunk (possibly on a pool
/// worker), and returns the fold results in chunk order.
fn drive<I, R>(iter: I, fold: &(dyn Fn(I) -> R + Sync)) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
{
    let n = iter.plen();
    let core = pool::current_core();
    let workers = core.workers();
    // Fair split across the pool, capped so large inputs stay cache-sized.
    let chunk = (n.div_ceil((workers.max(1)) * 2)).clamp(1, MAX_CHUNK);
    let n_chunks = n.div_ceil(chunk).max(1);
    if n_chunks <= 1 || workers <= 1 {
        return vec![fold(iter)];
    }
    let mut parts = Vec::with_capacity(n_chunks);
    let mut rest = iter;
    let mut remaining = n;
    while remaining > chunk {
        let (head, tail) = rest.split_at(chunk);
        parts.push(head);
        rest = tail;
        remaining -= chunk;
    }
    parts.push(rest);
    debug_assert_eq!(parts.len(), n_chunks);
    let input = Slots::new(parts);
    let output: Slots<R> = Slots::empty(n_chunks);
    let input_ref = &input;
    let output_ref = &output;
    core.run_chunks(n_chunks, &|i| {
        // Exclusive access: chunk index `i` is granted to exactly one
        // thread by the pool's atomic counter.
        let part = unsafe { input_ref.take(i) }.expect("chunk taken once");
        let r = fold(part);
        unsafe { output_ref.put(i, r) };
    });
    output
        .0
        .into_iter()
        .map(|c| c.into_inner().expect("every chunk produced a result"))
        .collect()
}

// ---------------------------------------------------------------- sources

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T: Sync> {
    s: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn plen(&self) -> usize {
        self.s.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at(index);
        (ParSlice { s: a }, ParSlice { s: b })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.s.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T: Send> {
    s: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for ParSliceMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn plen(&self) -> usize {
        self.s.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at_mut(index);
        (ParSliceMut { s: a }, ParSliceMut { s: b })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.s.iter_mut()
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct ParVec<T: Send> {
    v: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn plen(&self) -> usize {
        self.v.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.v.split_off(index);
        (self, ParVec { v: tail })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.v.into_iter()
    }
}

/// Parallel iterator over fixed-size sub-slices of `&[T]`. The chunk
/// boundaries depend only on `size`, never on the worker count.
pub struct ParChunks<'a, T: Sync> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;

    fn plen(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at(index * self.size);
        (ParChunks { s: a, size: self.size }, ParChunks { s: b, size: self.size })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.s.chunks(self.size)
    }
}

/// Mutable fixed-size chunk iterator over `&mut [T]`.
pub struct ParChunksMut<'a, T: Send> {
    s: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn plen(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.s.split_at_mut(index * self.size);
        (ParChunksMut { s: a, size: self.size }, ParChunksMut { s: b, size: self.size })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.s.chunks_mut(self.size)
    }
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    r: std::ops::Range<T>,
}

macro_rules! par_range_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type SeqIter = std::ops::Range<$t>;

            fn plen(&self) -> usize {
                if self.r.end > self.r.start {
                    (self.r.end - self.r.start) as usize
                } else {
                    0
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.r.start + index as $t;
                (
                    ParRange { r: self.r.start..mid },
                    ParRange { r: mid..self.r.end },
                )
            }

            fn into_seq_iter(self) -> Self::SeqIter {
                self.r
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;

            fn into_par_iter(self) -> Self::Iter {
                ParRange { r: self }
            }
        }
    )*};
}

par_range_impl!(usize, u32, u64, i32, i64);

// --------------------------------------------------------------- adapters

/// Mapped parallel iterator; the closure is shared across chunks.
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

/// Sequential side of [`Map`].
pub struct MapSeqIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapSeqIter<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.base.next().map(|x| (self.f)(x))
    }
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    type SeqIter = MapSeqIter<I::SeqIter, F>;

    fn plen(&self) -> usize {
        self.base.plen()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Map { base: a, f: self.f.clone() }, Map { base: b, f: self.f })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        MapSeqIter { base: self.base.into_seq_iter(), f: self.f }
    }
}

/// Zipped pair of parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn plen(&self) -> usize {
        self.a.plen().min(self.b.plen())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.a.into_seq_iter().zip(self.b.into_seq_iter())
    }
}

/// Index-tagged parallel iterator (`offset` survives splitting).
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type SeqIter = std::iter::Zip<std::ops::Range<usize>, I::SeqIter>;

    fn plen(&self) -> usize {
        self.base.plen()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + index },
        )
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        let n = self.base.plen();
        (self.offset..self.offset + n).zip(self.base.into_seq_iter())
    }
}

// ------------------------------------------------------------ conversions

/// `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator converts to itself (so `zip` accepts both raw
/// collections and already-built iterators).
impl<I: ParallelIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I;

    fn into_par_iter(self) -> I {
        self
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        ParSlice { s: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        ParSlice { s: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        ParSliceMut { s: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = ParSliceMut<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        ParSliceMut { s: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> Self::Iter {
        ParVec { v: self }
    }
}

/// `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send;
    /// Parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Iter = <&'a C as IntoParallelIterator>::Iter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type produced (a mutable reference).
    type Item: Send;
    /// Parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Mutably-borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Item = <&'a mut C as IntoParallelIterator>::Item;
    type Iter = <&'a mut C as IntoParallelIterator>::Iter;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `slice.par_chunks(n)`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element sub-slices (last may be
    /// shorter). Boundaries depend only on `size` — the determinism anchor
    /// for fixed-chunk reductions.
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "par_chunks: zero chunk size");
        ParChunks { s: self, size }
    }
}

/// `slice.par_chunks_mut(n)`.
pub trait ParallelSliceMut<T: Send> {
    /// Mutable fixed-size chunk iterator.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "par_chunks_mut: zero chunk size");
        ParChunksMut { s: self, size }
    }
}

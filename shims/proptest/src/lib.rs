//! Offline stand-in for the `proptest` crate.
//!
//! Implements the `proptest!` macro, `Strategy` (ranges, tuples,
//! `prop_map`, `prop_flat_map`), `any::<T>()`, and `collection::vec` as a
//! deterministic generate-and-check harness: each test's RNG is seeded
//! from its module path and case index, so failures are reproducible
//! run-to-run. Unlike the real crate there is no shrinking — a failing
//! case panics with its case index and message.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG (xoshiro256**, FNV-seeded).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for `test_path`, case `case` — same inputs, same stream.
    pub fn deterministic(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: empty bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a test case ended early.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed.
    Fail(String),
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a final value from the
    /// strategy `f` builds out of it.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_int_range_from {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
strategy_int_range_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String strategies: a `&str` pattern is interpreted as a small regex
/// subset — literal chars, `.` (any printable char), character classes
/// `[a-z0-9.-]` with ranges, each optionally followed by `{m,n}`.
/// Covers the patterns used in this workspace; unsupported syntax
/// (alternation, groups, `*`/`+`) panics at generation time.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in atoms {
            let span = (hi - lo) as u64 + 1;
            let reps = lo + rng.below(span) as usize;
            for _ in 0..reps {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

enum PatternAtom {
    Literal(char),
    /// Any printable char (mostly ASCII, occasionally other unicode).
    Any,
    /// Flattened set of class members.
    Class(Vec<char>),
}

impl PatternAtom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            PatternAtom::Literal(c) => *c,
            PatternAtom::Any => {
                if rng.below(10) < 9 {
                    char::from(0x20 + rng.below(0x5f) as u8) // printable ASCII
                } else {
                    char::from_u32(0xa1 + rng.below(0x1000) as u32).unwrap_or('\u{fffd}')
                }
            }
            PatternAtom::Class(set) => set[rng.below(set.len() as u64) as usize],
        }
    }
}

/// Parses the pattern into `(atom, min_reps, max_reps)` triples.
fn parse_pattern(pattern: &str) -> Vec<(PatternAtom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => PatternAtom::Any,
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("proptest shim: unterminated class in {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            for v in lo as u32..=hi as u32 {
                                set.extend(char::from_u32(v));
                            }
                        }
                        Some(member) => {
                            set.push(member);
                            prev = Some(member);
                        }
                    }
                }
                assert!(!set.is_empty(), "proptest shim: empty class in {pattern:?}");
                PatternAtom::Class(set)
            }
            '\\' => PatternAtom::Literal(
                chars.next().unwrap_or_else(|| panic!("proptest shim: trailing \\ in {pattern:?}")),
            ),
            '(' | ')' | '|' | '*' | '+' | '?' => {
                panic!("proptest shim: unsupported regex syntax {c:?} in {pattern:?}")
            }
            other => PatternAtom::Literal(other),
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("repeat lower bound"),
                    b.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "proptest shim: bad repeat {{{lo},{hi}}} in {pattern:?}");
        atoms.push((atom, lo, hi));
    }
    atoms
}

macro_rules! strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a default whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The conventional import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines deterministic property tests (see crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(case),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {}: case {} failed: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // The stringified condition may itself contain `{`/`}` (e.g. inline
        // format args in a nested `format!`), so it must be passed as a
        // runtime argument, never spliced into the format string.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                $($fmt)+
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l,
                __r
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(n in 3usize..14, x in -1.0f64..1.0, k in 0u64..=5) {
            prop_assert!((3..14).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(k <= 5);
        }

        #[test]
        fn vec_sizes_hold(v in collection::vec(any::<u8>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10, "len {}", v.len());
        }

        #[test]
        fn maps_compose(pair in (0usize..5).prop_flat_map(|n| (Just(n), 0..n + 1))) {
            let (n, k) = pair;
            prop_assert!(k <= n);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = TestRng::deterministic("mod::t", 3).next_u64();
        let b = TestRng::deterministic("mod::t", 3).next_u64();
        let c = TestRng::deterministic("mod::t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

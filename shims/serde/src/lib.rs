//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this shim uses
//! a concrete [`Content`] tree as the data model: `Serialize` lowers a
//! value into a `Content`, `Deserialize` rebuilds it from one. The
//! companion `serde_json` shim prints/parses `Content` as JSON, and the
//! `serde_derive` shim generates the two impls for structs and enums. The
//! JSON shapes match upstream serde conventions (externally tagged enums,
//! `Duration` as `{secs, nanos}`) so documents stay interchangeable.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data-model tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

/// Deserialization error: a human-readable description of the mismatch.
pub type DeError = String;

impl Content {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a required field in a struct's map representation.
///
/// # Errors
/// When the field is absent.
pub fn content_get<'a>(map: &'a [(String, Content)], field: &str) -> Result<&'a Content, DeError> {
    map.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{field}`"))
}

/// Lowers a value into the data model.
pub trait Serialize {
    /// The value as a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Rebuilds a value from the data model.
pub trait Deserialize: Sized {
    /// Parses the value out of a [`Content`] tree.
    ///
    /// # Errors
    /// A description of the first shape mismatch encountered.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

// Identity impls: `Content` *is* the data model, so it passes through
// serialization untouched. This is the shim's analogue of
// `serde_json::Value` — parse any document into a `Content`, splice
// trees together, and re-serialize without knowing their schema.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                        v as u64
                    }
                    ref other => return Err(format!("expected unsigned integer, got {other:?}")),
                };
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0
                        && v >= i64::MIN as f64 && v <= i64::MAX as f64 => v as i64,
                    ref other => return Err(format!("expected integer, got {other:?}")),
                };
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            Content::Null => Ok(f64::NAN),
            ref other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| format!("expected sequence, got {c:?}"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| format!("expected tuple seq, got {c:?}"))?;
                const LEN: usize = [$($n),+].len();
                if seq.len() != LEN {
                    return Err(format!("expected tuple of {LEN}, got {} elements", seq.len()));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}
serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            ("nanos".to_string(), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let map = c.as_map().ok_or_else(|| format!("expected duration map, got {c:?}"))?;
        let secs = u64::from_content(content_get(map, "secs")?)?;
        let nanos = u32::from_content(content_get(map, "nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(String::from_content(&"hi".to_content()).unwrap(), "hi");
        assert_eq!(
            Vec::<u32>::from_content(&vec![1u32, 2, 3].to_content()).unwrap(),
            vec![1, 2, 3]
        );
        let pair = (3usize, 4usize);
        assert_eq!(<(usize, usize)>::from_content(&pair.to_content()).unwrap(), pair);
    }

    #[test]
    fn duration_uses_serde_shape() {
        let d = std::time::Duration::new(3, 500);
        let c = d.to_content();
        let map = c.as_map().unwrap();
        assert_eq!(map[0].0, "secs");
        assert_eq!(std::time::Duration::from_content(&c).unwrap(), d);
    }

    #[test]
    fn missing_field_is_reported() {
        let map = vec![("a".to_string(), Content::U64(1))];
        assert!(content_get(&map, "b").unwrap_err().contains("missing field `b`"));
    }
}

//! Offline stand-in for the `crossbeam` crate (channel subset).
//!
//! Implements MPMC unbounded channels over `Mutex<VecDeque>` + `Condvar`
//! with crossbeam's disconnect semantics: `recv` fails once the queue is
//! empty and every sender is gone; `send` fails once every receiver is
//! gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`.
        ///
        /// # Errors
        /// [`SendError`] when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is empty and every sender has
        /// been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally all senders are
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}

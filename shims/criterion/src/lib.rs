//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's `harness = false` benches
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`) as a minimal
//! wall-clock harness: each benchmark runs a short warm-up plus a
//! bounded number of timed samples and prints mean time per iteration
//! (and throughput when configured). No statistics, reports, or
//! command-line handling.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot elide benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measured quantity per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `body` for a warm-up pass plus `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        black_box(body()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(body());
        }
        self.elapsed = start.elapsed();
        self.iters = u64::from(self.samples);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs benchmark `id` with body `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs benchmark `id`, passing `input` to the body.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{}: no iterations recorded", self.name, id.id);
            return;
        }
        let per_iter = b.elapsed / b.iters as u32;
        let mut line = format!(
            "{}/{}: {:?}/iter over {} iters",
            self.name, id.id, per_iter, b.iters
        );
        if let Some(Throughput::Bytes(bytes)) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!(" ({:.1} MiB/s)", bytes as f64 / secs / (1 << 20) as f64));
            }
        }
        println!("{line}");
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Kept for API parity; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("with", 7), &5u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
